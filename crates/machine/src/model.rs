//! Target machine descriptions.

use crate::gemmini::gemmini_instructions;
use crate::isa::{avx2_instructions, avx512_instructions};
use exo_ir::{DataType, Mem, Proc};

/// The platforms the paper evaluates on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum MachineKind {
    /// A scalar CPU with no vector extension (used as a naive baseline).
    Scalar,
    /// An x86 CPU with AVX2 (256-bit vectors).
    Avx2,
    /// An x86 CPU with AVX512 (512-bit vectors).
    Avx512,
    /// The Gemmini ML accelerator attached to a host CPU.
    Gemmini,
}

/// A target machine: vector parameters and the instruction procedures the
/// scheduling libraries lower to.
#[derive(Clone, Debug)]
pub struct MachineModel {
    /// Which platform this is.
    pub kind: MachineKind,
    /// Human-readable name used in reports.
    pub name: &'static str,
    /// Whether fused multiply-add instructions are available.
    pub has_fma: bool,
    /// Whether predicated (masked) vector loads/stores are supported — the
    /// paper's skinny-matrix schedules require this.
    pub supports_predication: bool,
}

impl MachineModel {
    /// The AVX2 machine model.
    pub fn avx2() -> Self {
        MachineModel {
            kind: MachineKind::Avx2,
            name: "AVX2",
            has_fma: true,
            supports_predication: true,
        }
    }

    /// The AVX512 machine model.
    pub fn avx512() -> Self {
        MachineModel {
            kind: MachineKind::Avx512,
            name: "AVX512",
            has_fma: true,
            supports_predication: true,
        }
    }

    /// The Gemmini accelerator model.
    pub fn gemmini() -> Self {
        MachineModel {
            kind: MachineKind::Gemmini,
            name: "Gemmini",
            has_fma: false,
            supports_predication: false,
        }
    }

    /// A scalar CPU with no vector unit.
    pub fn scalar() -> Self {
        MachineModel {
            kind: MachineKind::Scalar,
            name: "scalar",
            has_fma: false,
            supports_predication: false,
        }
    }

    /// Number of vector lanes for the given precision (1 on scalar /
    /// Gemmini hosts).
    pub fn vec_width(&self, ty: DataType) -> i64 {
        let mem = self.mem_type();
        mem.lanes(ty).map(|l| l as i64).unwrap_or(1)
    }

    /// The vector-register memory space of this machine.
    pub fn mem_type(&self) -> Mem {
        match self.kind {
            MachineKind::Avx2 => Mem::VecAvx2,
            MachineKind::Avx512 => Mem::VecAvx512,
            MachineKind::Gemmini => Mem::GemmScratch,
            MachineKind::Scalar => Mem::Dram,
        }
    }

    /// The instruction procedures available for the given precision.
    ///
    /// Instruction sets are immutable, so they are built once per
    /// `(machine, precision)` pair and then served from a process-wide
    /// cache — cloning a `Proc` is cheap (procedure bodies are
    /// structurally shared), while rebuilding the whole set through
    /// `ProcBuilder` on every scheduling call is not.
    pub fn instructions(&self, ty: DataType) -> Vec<Proc> {
        use std::collections::HashMap;
        use std::sync::Mutex;
        type InstrCache = Mutex<Option<HashMap<(MachineKind, DataType), Vec<Proc>>>>;
        static CACHE: InstrCache = Mutex::new(None);
        let mut guard = CACHE.lock().unwrap_or_else(|e| e.into_inner());
        guard
            .get_or_insert_with(HashMap::new)
            .entry((self.kind, ty))
            .or_insert_with(|| match self.kind {
                MachineKind::Avx2 => avx2_instructions(ty),
                MachineKind::Avx512 => avx512_instructions(ty),
                MachineKind::Gemmini => gemmini_instructions(),
                MachineKind::Scalar => Vec::new(),
            })
            .clone()
    }

    /// The instruction-name prefix for this machine (`mm256` / `mm512`),
    /// used by scheduling libraries to pick specific instructions.
    pub fn prefix(&self) -> &'static str {
        match self.kind {
            MachineKind::Avx2 => "mm256",
            MachineKind::Avx512 => "mm512",
            MachineKind::Gemmini => "gemmini",
            MachineKind::Scalar => "scalar",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_widths_match_the_isas() {
        assert_eq!(MachineModel::avx2().vec_width(DataType::F32), 8);
        assert_eq!(MachineModel::avx2().vec_width(DataType::F64), 4);
        assert_eq!(MachineModel::avx512().vec_width(DataType::F32), 16);
        assert_eq!(MachineModel::avx512().vec_width(DataType::F64), 8);
        assert_eq!(MachineModel::scalar().vec_width(DataType::F32), 1);
    }

    #[test]
    fn instruction_sets_are_nonempty_for_vector_targets() {
        assert!(!MachineModel::avx2().instructions(DataType::F32).is_empty());
        assert!(!MachineModel::avx512()
            .instructions(DataType::F64)
            .is_empty());
        assert!(!MachineModel::gemmini()
            .instructions(DataType::I8)
            .is_empty());
        assert!(MachineModel::scalar()
            .instructions(DataType::F32)
            .is_empty());
    }

    #[test]
    fn prefixes_and_predication() {
        assert_eq!(MachineModel::avx2().prefix(), "mm256");
        assert_eq!(MachineModel::avx512().prefix(), "mm512");
        assert!(MachineModel::avx512().supports_predication);
        assert!(!MachineModel::gemmini().supports_predication);
    }
}
