//! # exo-machine — target machines and the cycle-cost simulator
//!
//! The paper evaluates Exo 2 on three platforms: x86 CPUs with AVX2 and
//! AVX512 vector extensions, and the Gemmini ML accelerator. This crate
//! provides:
//!
//! * [`MachineModel`] — per-target parameters (vector width, FMA support,
//!   predicated loads/stores) plus the *instruction procedures* the target
//!   exposes. Instruction procedures are ordinary object-language
//!   procedures whose bodies define their semantics; the `replace`
//!   primitive substitutes matching loop nests with calls to them.
//! * [`CostModel`] / [`CostMonitor`] — an `exo-interp` [`exo_interp::Monitor`]
//!   that charges cycles per scalar operation, per vector instruction
//!   (keyed by the instruction's cost class), per Gemmini instruction, and
//!   per memory access through a two-level cache model.
//! * [`simulate`] — convenience entry point: run a procedure on concrete
//!   inputs and return the simulated cycle count and event statistics.
//!
//! Because the authors' hardware is unavailable, all performance numbers
//! in this reproduction are *simulated cycles*; the benchmark harness
//! compares ratios between implementations run on the same model, which is
//! the quantity the paper's figures report (see `DESIGN.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod cost;
mod gemmini;
mod hostcaps;
mod intrinsics;
mod isa;
mod model;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use cost::{simulate, try_simulate, CostModel, CostMonitor, SimReport};
pub use gemmini::{gemmini_instructions, GEMM_ACCUM_BYTES, GEMM_SCRATCH_BYTES};
pub use hostcaps::HostCaps;
pub use intrinsics::{c_intrinsic, c_type_tag, CIntrinsic};
pub use isa::{
    avx2_instructions, avx512_instructions, instruction_cost_class, try_instruction_cost_class,
    UnknownCostClass, DEFAULT_INSTRUCTION_COST,
};
pub use model::{MachineKind, MachineModel};
