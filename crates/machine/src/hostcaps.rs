//! Host CPU capability detection for run-time (not just compile-time)
//! validation of native code.
//!
//! The machine models in this crate describe the *target* ISA; whether
//! the *host* executing the test suite can actually run `-mavx2 -mfma`
//! binaries is a separate question. [`HostCaps::detect`] answers it with
//! a tiny supervised `cc` probe built around `__builtin_cpu_supports`,
//! plus a separate `-fopenmp` link probe. Results are cached for the
//! process lifetime; every failure mode (no `cc`, non-x86 host, probe
//! timeout) degrades to "feature absent", never to an error.

use exo_guard::{run_guarded, GuardConfig};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::OnceLock;
use std::time::Duration;

/// What the host running this process can compile *and execute*.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostCaps {
    /// A C compiler (`cc`) is on `PATH` and responds.
    pub cc: bool,
    /// The CPU executes AVX2 instructions.
    pub avx2: bool,
    /// The CPU executes FMA3 instructions.
    pub fma: bool,
    /// The CPU executes AVX-512F instructions.
    pub avx512f: bool,
    /// `cc -fopenmp` compiles and links a parallel program.
    pub openmp: bool,
    /// Hardware threads available to this process (≥ 1).
    pub threads: usize,
}

impl HostCaps {
    /// The no-capability fallback: no compiler, no SIMD, one thread.
    /// This is what [`detect`](HostCaps::detect) degrades to when every
    /// probe fails, and what tests inject to simulate a bare host.
    pub fn none() -> HostCaps {
        HostCaps {
            cc: false,
            avx2: false,
            fma: false,
            avx512f: false,
            openmp: false,
            threads: 1,
        }
    }

    /// Probes the host once and caches the answer for the process
    /// lifetime. Never fails: hosts without `cc`, non-x86 hosts, and
    /// probe timeouts all report the affected features as absent.
    pub fn detect() -> &'static HostCaps {
        static CAPS: OnceLock<HostCaps> = OnceLock::new();
        CAPS.get_or_init(probe)
    }

    /// Whether every flag in `cflags` is one this host can honor at
    /// *run time*. Feature flags map to the probed CPU features;
    /// `-fopenmp` maps to the toolchain probe; unrecognized flags are
    /// conservatively unsupported (a unit asking for `-msve` should not
    /// be executed here on the strength of our ignorance).
    pub fn supports_cflags<S: AsRef<str>>(&self, cflags: &[S]) -> bool {
        self.cc
            && cflags.iter().all(|f| match f.as_ref() {
                "-mavx2" => self.avx2,
                "-mfma" => self.fma,
                "-mavx512f" => self.avx512f,
                "-fopenmp" => self.openmp,
                other => !other.starts_with("-m") && !other.starts_with("-f"),
            })
    }

    /// One-line human-readable summary (used by bench headers and
    /// service traces).
    pub fn summary(&self) -> String {
        format!(
            "cc={} avx2={} fma={} avx512f={} openmp={} threads={}",
            self.cc, self.avx2, self.fma, self.avx512f, self.openmp, self.threads
        )
    }
}

/// C source of the CPU-feature probe. Guarded so it compiles (and
/// reports all-absent) on any compiler/architecture.
const CPU_PROBE_C: &str = r#"#include <stdio.h>
int main(void) {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    __builtin_cpu_init();
    printf("avx2=%d\nfma=%d\navx512f=%d\n",
           __builtin_cpu_supports("avx2") != 0,
           __builtin_cpu_supports("fma") != 0,
           __builtin_cpu_supports("avx512f") != 0);
#else
    printf("avx2=0\nfma=0\navx512f=0\n");
#endif
    return 0;
}
"#;

/// C source of the OpenMP toolchain probe: exercises a real
/// `parallel for` so a compiler that accepts the flag but fails to link
/// `libgomp` is still reported as unsupported.
const OMP_PROBE_C: &str = r#"#include <stdio.h>
int main(void) {
    int sum = 0;
    #pragma omp parallel for reduction(+ : sum)
    for (int i = 0; i < 64; i++) { sum += i; }
    printf("omp=%d\n", sum == 2016);
    return 0;
}
"#;

fn probe_dir() -> Option<PathBuf> {
    let dir = std::env::temp_dir().join(format!("exo_hostcaps_{}", std::process::id()));
    std::fs::create_dir_all(&dir).ok()?;
    Some(dir)
}

/// Compiles `source` with `extra_flags`, runs the binary, and returns
/// its stdout. Any failure (write, compile, run, timeout) yields `None`.
fn compile_and_run(dir: &Path, tag: &str, source: &str, extra_flags: &[&str]) -> Option<String> {
    let src = dir.join(format!("{tag}.c"));
    let bin = dir.join(format!("{tag}.bin"));
    std::fs::write(&src, source).ok()?;
    let mut cc = Command::new("cc");
    cc.arg("-O0")
        .args(extra_flags)
        .arg("-o")
        .arg(&bin)
        .arg(&src);
    let compiled =
        run_guarded(&mut cc, &GuardConfig::with_timeout(Duration::from_secs(60))).ok()?;
    if !compiled.success {
        return None;
    }
    let ran = run_guarded(
        &mut Command::new(&bin),
        &GuardConfig::with_timeout(Duration::from_secs(15)),
    )
    .ok()?;
    if !ran.success {
        return None;
    }
    Some(ran.stdout_lossy())
}

/// `"key=1"` present in the probe output (absent or malformed ⇒ false).
fn flag_of(output: &str, key: &str) -> bool {
    output.lines().any(|line| line.trim() == format!("{key}=1"))
}

fn probe() -> HostCaps {
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let Some(dir) = probe_dir() else {
        return HostCaps {
            threads,
            ..HostCaps::none()
        };
    };
    let cpu = compile_and_run(&dir, "cpu", CPU_PROBE_C, &[]);
    let caps = HostCaps {
        cc: cpu.is_some(),
        avx2: cpu.as_deref().is_some_and(|o| flag_of(o, "avx2")),
        fma: cpu.as_deref().is_some_and(|o| flag_of(o, "fma")),
        avx512f: cpu.as_deref().is_some_and(|o| flag_of(o, "avx512f")),
        openmp: cpu.is_some()
            && compile_and_run(&dir, "omp", OMP_PROBE_C, &["-fopenmp"])
                .as_deref()
                .is_some_and(|o| flag_of(o, "omp")),
        threads,
    };
    let _ = std::fs::remove_dir_all(&dir);
    caps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_reports_nothing_supported() {
        let none = HostCaps::none();
        assert!(!none.cc && !none.avx2 && !none.openmp);
        assert_eq!(none.threads, 1);
        assert!(!none.supports_cflags(&["-mavx2"]));
        // Even the empty flag set needs a working compiler to matter.
        assert!(!none.supports_cflags::<&str>(&[]));
    }

    #[test]
    fn supports_cflags_maps_flags_to_features() {
        let caps = HostCaps {
            cc: true,
            avx2: true,
            fma: true,
            avx512f: false,
            openmp: true,
            threads: 8,
        };
        assert!(caps.supports_cflags(&["-mavx2", "-mfma"]));
        assert!(caps.supports_cflags(&["-mavx2", "-mfma", "-fopenmp"]));
        assert!(!caps.supports_cflags(&["-mavx512f"]));
        // Unknown feature flags are conservatively unsupported…
        assert!(!caps.supports_cflags(&["-msve"]));
        // …but neutral flags pass through.
        assert!(caps.supports_cflags(&["-O2"]));
    }

    #[test]
    fn detect_is_cached_and_self_consistent() {
        let a = HostCaps::detect();
        let b = HostCaps::detect();
        assert!(std::ptr::eq(a, b), "detect() must cache");
        assert!(a.threads >= 1);
        // CPU features can only be claimed when a compiler ran the probe.
        if !a.cc {
            assert!(!a.avx2 && !a.fma && !a.avx512f && !a.openmp);
        }
        // The summary names every field.
        for key in ["cc=", "avx2=", "fma=", "avx512f=", "openmp=", "threads="] {
            assert!(a.summary().contains(key));
        }
    }

    #[test]
    fn probe_parser_ignores_malformed_lines() {
        assert!(flag_of("avx2=1\nfma=0\n", "avx2"));
        assert!(!flag_of("avx2=1\nfma=0\n", "fma"));
        assert!(!flag_of("garbage\navx2 = 1\n", "avx2"));
        assert!(!flag_of("", "avx2"));
    }
}
