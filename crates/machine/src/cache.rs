//! A small two-level set-associative cache model.
//!
//! The cost monitor feeds every DRAM-space access through this model;
//! hits in L1/L2 are cheap, misses pay a memory latency. This is what
//! makes tiling, staging and data-layout schedules pay off in the
//! simulated figures, mirroring why they pay off on real hardware.

use std::collections::VecDeque;

/// Configuration of a single cache level.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Line size in bytes.
    pub line: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// A 32 KiB, 8-way L1 with 64-byte lines.
    pub fn l1() -> Self {
        CacheConfig {
            capacity: 32 * 1024,
            line: 64,
            ways: 8,
            hit_latency: 4,
        }
    }

    /// A 1 MiB, 16-way L2 with 64-byte lines.
    pub fn l2() -> Self {
        CacheConfig {
            capacity: 1024 * 1024,
            line: 64,
            ways: 16,
            hit_latency: 14,
        }
    }
}

/// Aggregate statistics for one cache level.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CacheStats {
    /// Number of accesses.
    pub accesses: u64,
    /// Number of misses.
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`; zero when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// One set-associative cache level with LRU replacement.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<VecDeque<u64>>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given configuration.
    pub fn new(config: CacheConfig) -> Self {
        let n_sets = (config.capacity / config.line / config.ways as u64).max(1) as usize;
        Cache {
            config,
            sets: vec![VecDeque::new(); n_sets],
            stats: CacheStats::default(),
        }
    }

    /// Accesses `addr`; returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        let line = addr / self.config.line;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            // LRU: move to the front.
            set.remove(pos);
            set.push_front(line);
            return true;
        }
        self.stats.misses += 1;
        set.push_front(line);
        while set.len() > self.config.ways {
            set.pop_back();
        }
        false
    }

    /// Hit latency of this level.
    pub fn hit_latency(&self) -> u64 {
        self.config.hit_latency
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_accesses_hit() {
        let mut c = Cache::new(CacheConfig::l1());
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1004)); // same line
        assert!(!c.access(0x2000));
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().misses, 2);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_evictions_occur() {
        // A tiny 2-way, 2-set cache: 4 lines total.
        let mut c = Cache::new(CacheConfig {
            capacity: 256,
            line: 64,
            ways: 2,
            hit_latency: 1,
        });
        // Access 3 distinct lines mapping to the same set (stride = 2 lines).
        assert!(!c.access(0));
        assert!(!c.access(128));
        assert!(!c.access(256));
        // Line 0 was evicted (LRU).
        assert!(!c.access(0));
        // Line 256 is still resident.
        assert!(c.access(256));
    }

    #[test]
    fn streaming_misses_once_per_line() {
        let mut c = Cache::new(CacheConfig::l1());
        for i in 0..1024u64 {
            c.access(0x4000 + i * 4);
        }
        // 1024 * 4 bytes / 64-byte lines = 64 misses.
        assert_eq!(c.stats().misses, 64);
    }
}
