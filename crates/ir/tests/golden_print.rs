//! Golden pretty-printer tests: fixed procedures compared against the
//! exact expected text, so any printer regression is caught without
//! running the interpreter.

use exo_ir::{fb, ib, read, var, DataType, Expr, Mem, ProcBuilder, Stmt, Sym};

#[test]
fn golden_gemv() {
    let p = ProcBuilder::new("gemv")
        .size_arg("M")
        .size_arg("N")
        .tensor_arg("A", DataType::F32, vec![var("M"), var("N")], Mem::Dram)
        .tensor_arg("x", DataType::F32, vec![var("N")], Mem::Dram)
        .tensor_arg("y", DataType::F32, vec![var("M")], Mem::Dram)
        .assert_(Expr::eq_(Expr::modulo(var("M"), ib(8)), ib(0)))
        .for_("i", ib(0), var("M"), |b| {
            b.for_("j", ib(0), var("N"), |b| {
                let rhs = read("A", vec![var("i"), var("j")]) * read("x", vec![var("j")]);
                b.reduce("y", vec![var("i")], rhs);
            });
        })
        .build();
    let expected = "\
def gemv(M: size, N: size, A: f32[M, N] @ DRAM, x: f32[N] @ DRAM, y: f32[M] @ DRAM):
    assert M % 8 == 0
    for i in seq(0, M):
        for j in seq(0, N):
            y[i] += A[i, j] * x[j]
";
    assert_eq!(p.to_string(), expected);
}

#[test]
fn golden_alloc_call_config_and_if() {
    let p = ProcBuilder::new("staged")
        .size_arg("n")
        .scalar_arg("alpha", DataType::F32)
        .tensor_arg("x", DataType::F32, vec![var("n")], Mem::Dram)
        .with_body(|b| {
            b.alloc("tmp", DataType::F32, vec![ib(16)], Mem::VecAvx512);
            b.write_config("cfg", "stride", ib(1));
            b.call("mm512_loadu_ps", vec![var("tmp"), var("x")]);
            b.if_else(
                Expr::lt(var("alpha"), fb(0.0)),
                |t| {
                    t.assign("x", vec![ib(0)], fb(0.0));
                },
                |e| {
                    e.pass();
                },
            );
        })
        .build();
    let expected = "\
def staged(n: size, alpha: f32, x: f32[n] @ DRAM):
    tmp: f32[16] @ VEC_AVX512
    cfg.stride = 1
    mm512_loadu_ps(tmp, x)
    if alpha < 0.0:
        x[0] = 0.0
    else:
        pass
";
    assert_eq!(p.to_string(), expected);
}

#[test]
fn golden_parallel_loop_and_scalar_dest() {
    let p = ProcBuilder::new("axpy_like")
        .size_arg("n")
        .tensor_arg("x", DataType::F32, vec![var("n")], Mem::Dram)
        .tensor_arg("out", DataType::F32, vec![], Mem::Dram)
        .stmt(Stmt::For {
            iter: Sym::new("i"),
            lo: ib(0),
            hi: var("n"),
            body: exo_ir::Block::from_stmts(vec![Stmt::Reduce {
                buf: Sym::new("out"),
                idx: vec![],
                rhs: read("x", vec![var("i")]),
            }]),
            parallel: true,
        })
        .build();
    let expected = "\
def axpy_like(n: size, x: f32[n] @ DRAM, out: f32 @ DRAM):
    for i in par(0, n):
        out += x[i]
";
    assert_eq!(p.to_string(), expected);
}

#[test]
fn golden_empty_proc_prints_pass() {
    let p = ProcBuilder::new("empty").build();
    assert_eq!(p.to_string(), "def empty():\n    pass\n");
}
