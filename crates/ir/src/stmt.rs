//! Statements and statement blocks of the object language.

use crate::expr::Expr;
use crate::sym::Sym;
use crate::types::{DataType, Mem};
use std::sync::Arc;

/// A sequence of statements (the body of a procedure, loop or branch).
///
/// Blocks are *structurally shared*: cloning a block is an `Arc` bump, and
/// two clones share one statement vector until one of them is mutated
/// through [`Block::stmts_mut`], which copies the vector only if it is
/// shared (path copying). This is what makes procedure snapshots in the
/// scheduling layer near-free — committing an edit copies only the spine
/// of blocks from the root to the edit site, while every unchanged sibling
/// subtree stays shared across versions.
#[derive(Clone, Debug)]
pub struct Block(Arc<Vec<Stmt>>);

impl Block {
    /// Creates an empty block.
    pub fn new() -> Self {
        Block(Arc::new(Vec::new()))
    }

    /// Creates a block from statements.
    pub fn from_stmts(stmts: Vec<Stmt>) -> Self {
        Block(Arc::new(stmts))
    }

    /// The statements of this block.
    pub fn stmts(&self) -> &[Stmt] {
        &self.0
    }

    /// Mutable access to the statement vector. If the block is shared with
    /// other clones, the vector is copied first (copy-on-write); the other
    /// clones keep observing the old contents.
    pub fn stmts_mut(&mut self) -> &mut Vec<Stmt> {
        Arc::make_mut(&mut self.0)
    }

    /// Extracts the statement vector, cloning only if the block is shared.
    pub fn into_stmts(self) -> Vec<Stmt> {
        Arc::try_unwrap(self.0).unwrap_or_else(|shared| (*shared).clone())
    }

    /// The statement at `i`, if in bounds.
    pub fn get(&self, i: usize) -> Option<&Stmt> {
        self.0.get(i)
    }

    /// Number of statements directly in this block.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether this block has no statements.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over direct statements.
    pub fn iter(&self) -> std::slice::Iter<'_, Stmt> {
        self.0.iter()
    }

    /// Total number of statements in this block, counted recursively.
    pub fn count_recursive(&self) -> usize {
        self.0.iter().map(|s| s.count_recursive()).sum()
    }

    /// Whether two blocks share the same underlying statement storage
    /// (used by sharing/aliasing tests and the retained-size estimator).
    pub fn shares_storage_with(&self, other: &Block) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// A stable address for the underlying storage, used to deduplicate
    /// shared blocks when estimating retained memory.
    pub fn storage_id(&self) -> usize {
        Arc::as_ptr(&self.0) as usize
    }
}

impl Default for Block {
    fn default() -> Self {
        Block::new()
    }
}

impl PartialEq for Block {
    fn eq(&self, other: &Self) -> bool {
        // Shared storage is equal by construction; fall back to a deep
        // comparison otherwise. Caveat: for blocks containing a float NaN
        // literal the deep comparison is non-reflexive (NaN != NaN) while
        // the pointer fast path reports shared clones equal — the object
        // language never produces NaN literals, so this stays theoretical.
        Arc::ptr_eq(&self.0, &other.0) || *self.0 == *other.0
    }
}

impl std::ops::Index<usize> for Block {
    type Output = Stmt;
    fn index(&self, i: usize) -> &Stmt {
        &self.0[i]
    }
}

impl FromIterator<Stmt> for Block {
    fn from_iter<T: IntoIterator<Item = Stmt>>(iter: T) -> Self {
        Block::from_stmts(iter.into_iter().collect())
    }
}

impl From<Vec<Stmt>> for Block {
    fn from(stmts: Vec<Stmt>) -> Self {
        Block::from_stmts(stmts)
    }
}

impl<'a> IntoIterator for &'a Block {
    type Item = &'a Stmt;
    type IntoIter = std::slice::Iter<'a, Stmt>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A statement of the object language.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `buf[idx...] = rhs` — overwrite a buffer element (or scalar when
    /// `idx` is empty).
    Assign {
        /// Destination buffer.
        buf: Sym,
        /// Destination index per dimension.
        idx: Vec<Expr>,
        /// Value written.
        rhs: Expr,
    },
    /// `buf[idx...] += rhs` — reduce (accumulate) into a buffer element.
    Reduce {
        /// Destination buffer.
        buf: Sym,
        /// Destination index per dimension.
        idx: Vec<Expr>,
        /// Value accumulated.
        rhs: Expr,
    },
    /// `name: ty[dims...] @ mem` — allocate a buffer for the remainder of
    /// the enclosing scope.
    Alloc {
        /// Buffer name.
        name: Sym,
        /// Element type.
        ty: DataType,
        /// Dimension sizes (empty for a scalar temporary).
        dims: Vec<Expr>,
        /// Memory space.
        mem: Mem,
    },
    /// `for iter in seq(lo, hi): body` — a sequential (or, after
    /// `parallelize_loop`, parallel) counted loop.
    For {
        /// Iterator symbol, scoped to `body`.
        iter: Sym,
        /// Inclusive lower bound.
        lo: Expr,
        /// Exclusive upper bound.
        hi: Expr,
        /// Loop body.
        body: Block,
        /// Whether iterations may execute in parallel.
        parallel: bool,
    },
    /// `if cond: then_body else: else_body`.
    If {
        /// Branch condition.
        cond: Expr,
        /// Taken when `cond` is true.
        then_body: Block,
        /// Taken when `cond` is false (may be empty).
        else_body: Block,
    },
    /// A call to another procedure or to an instruction procedure.
    Call {
        /// Callee name.
        proc: String,
        /// Arguments (scalars, sizes, buffer windows).
        args: Vec<Expr>,
    },
    /// `pass` — the empty statement.
    Pass,
    /// `config.field = value` — write an accelerator configuration register.
    WriteConfig {
        /// Configuration struct.
        config: Sym,
        /// Field name.
        field: String,
        /// New value.
        value: Expr,
    },
    /// A window alias declaration: `name = buf[w...]` where the right-hand
    /// side is a window expression. Introduced by `stage_mem`-style
    /// operations and removed by `inline_window`.
    WindowStmt {
        /// Alias name.
        name: Sym,
        /// Window expression (must be [`Expr::Window`]).
        rhs: Expr,
    },
}

impl Stmt {
    /// A human-readable label for the statement kind, used by error
    /// messages and pattern matching.
    pub fn kind(&self) -> &'static str {
        match self {
            Stmt::Assign { .. } => "assign",
            Stmt::Reduce { .. } => "reduce",
            Stmt::Alloc { .. } => "alloc",
            Stmt::For { .. } => "for",
            Stmt::If { .. } => "if",
            Stmt::Call { .. } => "call",
            Stmt::Pass => "pass",
            Stmt::WriteConfig { .. } => "write_config",
            Stmt::WindowStmt { .. } => "window",
        }
    }

    /// Direct child blocks of this statement (loop body, branch arms).
    pub fn child_blocks(&self) -> Vec<&Block> {
        match self {
            Stmt::For { body, .. } => vec![body],
            Stmt::If {
                then_body,
                else_body,
                ..
            } => vec![then_body, else_body],
            _ => vec![],
        }
    }

    /// Mutable access to direct child blocks of this statement.
    pub fn child_blocks_mut(&mut self) -> Vec<&mut Block> {
        match self {
            Stmt::For { body, .. } => vec![body],
            Stmt::If {
                then_body,
                else_body,
                ..
            } => vec![then_body, else_body],
            _ => vec![],
        }
    }

    /// Total number of statements rooted at this one (itself included).
    pub fn count_recursive(&self) -> usize {
        1 + self
            .child_blocks()
            .iter()
            .map(|b| b.count_recursive())
            .sum::<usize>()
    }

    /// Returns `true` if the statement is a `for` loop.
    pub fn is_for(&self) -> bool {
        matches!(self, Stmt::For { .. })
    }

    /// Returns `true` if the statement is an `if`.
    pub fn is_if(&self) -> bool {
        matches!(self, Stmt::If { .. })
    }

    /// The loop iterator symbol, if this is a `for` loop.
    pub fn loop_iter(&self) -> Option<&Sym> {
        match self {
            Stmt::For { iter, .. } => Some(iter),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{ib, read, var};

    fn sample_loop() -> Stmt {
        Stmt::For {
            iter: Sym::new("i"),
            lo: ib(0),
            hi: var("n"),
            body: Block::from_stmts(vec![Stmt::Reduce {
                buf: Sym::new("y"),
                idx: vec![var("i")],
                rhs: read("x", vec![var("i")]),
            }]),
            parallel: false,
        }
    }

    #[test]
    fn kinds_and_predicates() {
        let s = sample_loop();
        assert_eq!(s.kind(), "for");
        assert!(s.is_for());
        assert!(!s.is_if());
        assert_eq!(s.loop_iter(), Some(&Sym::new("i")));
        assert_eq!(Stmt::Pass.kind(), "pass");
    }

    #[test]
    fn recursive_count() {
        let s = sample_loop();
        assert_eq!(s.count_recursive(), 2);
        let nested = Stmt::For {
            iter: Sym::new("j"),
            lo: ib(0),
            hi: ib(4),
            body: Block::from_stmts(vec![s]),
            parallel: false,
        };
        assert_eq!(nested.count_recursive(), 3);
    }

    #[test]
    fn child_blocks_of_if() {
        let s = Stmt::If {
            cond: Expr::Bool(true),
            then_body: Block::from_stmts(vec![Stmt::Pass]),
            else_body: Block::new(),
        };
        let blocks = s.child_blocks();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].len(), 1);
        assert!(blocks[1].is_empty());
    }

    #[test]
    fn block_collects_from_iterator() {
        let b: Block = vec![Stmt::Pass, Stmt::Pass].into_iter().collect();
        assert_eq!(b.len(), 2);
        assert_eq!(b.count_recursive(), 2);
    }
}
