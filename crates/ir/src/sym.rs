//! Symbols (variable, buffer, iterator and configuration-register names).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A symbol in the object language: an iterator, buffer, scalar or
/// configuration-register name.
///
/// Symbols compare by their textual name. Two mechanisms mint fresh
/// temporaries:
///
/// * [`crate::Proc::fresh_sym`] — deterministic per procedure (the
///   smallest unused `base_n` suffix). This is what the scheduling
///   libraries use, so generated names depend only on the procedure being
///   scheduled, never on global state or test order.
/// * [`Sym::fresh`] — a process-global counter, kept for contexts with no
///   procedure at hand. Names are unique but *not* reproducible across
///   runs or orderings; avoid it anywhere output is golden-tested.
///
/// ```
/// use exo_ir::Sym;
/// let a = Sym::new("x");
/// let b = Sym::new("x");
/// assert_eq!(a, b);
/// let f1 = Sym::fresh("tmp");
/// let f2 = Sym::fresh("tmp");
/// assert_ne!(f1, f2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(String);

static FRESH_COUNTER: AtomicU64 = AtomicU64::new(0);

impl Sym {
    /// Creates a symbol with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Sym(name.into())
    }

    /// Creates a fresh symbol guaranteed to differ from any previously
    /// created fresh symbol, derived from `base`.
    pub fn fresh(base: &str) -> Self {
        let n = FRESH_COUNTER.fetch_add(1, Ordering::Relaxed);
        Sym(format!("{base}_{n}"))
    }

    /// Resets the global fresh-name counter to zero so a schedule
    /// constructed next produces deterministic generated names.
    ///
    /// This exists for single-threaded benchmark harnesses and golden
    /// tests (`sched_bench` resets before every schedule construction so
    /// repeated runs pretty-print identically). Never call it from code
    /// that may run concurrently with other symbol-generating work —
    /// reused suffixes could collide with live fresh names.
    pub fn reset_fresh_counter() {
        FRESH_COUNTER.store(0, Ordering::Relaxed);
    }

    /// Returns the symbol's textual name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({})", self.0)
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Self {
        Sym::new(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Self {
        Sym::new(s)
    }
}

impl From<&Sym> for Sym {
    fn from(s: &Sym) -> Self {
        s.clone()
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.0 == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_is_by_name() {
        assert_eq!(Sym::new("i"), Sym::new("i"));
        assert_ne!(Sym::new("i"), Sym::new("j"));
        assert_eq!(Sym::new("i"), *"i");
    }

    #[test]
    fn fresh_symbols_are_unique() {
        let s1 = Sym::fresh("v");
        let s2 = Sym::fresh("v");
        assert_ne!(s1, s2);
        assert!(s1.name().starts_with("v_"));
    }

    #[test]
    fn display_and_debug() {
        let s = Sym::new("acc");
        assert_eq!(format!("{s}"), "acc");
        assert_eq!(format!("{s:?}"), "Sym(acc)");
    }

    #[test]
    fn conversions() {
        let s: Sym = "buf".into();
        assert_eq!(s.name(), "buf");
        let owned: Sym = String::from("buf2").into();
        assert_eq!(owned.name(), "buf2");
    }
}
