//! Builder API for constructing object-language procedures in Rust.
//!
//! The builder mirrors the surface syntax of Exo procedures: arguments are
//! declared first, then assertions, then the body is built with nested
//! closures for loops and branches.

use crate::expr::{read, Expr};
use crate::proc::{ArgKind, InstrInfo, Proc, ProcArg};
use crate::stmt::{Block, Stmt};
use crate::sym::Sym;
use crate::types::{DataType, Mem};

/// Builds statement blocks (procedure / loop / branch bodies).
#[derive(Debug, Default)]
pub struct BlockBuilder {
    stmts: Vec<Stmt>,
}

impl BlockBuilder {
    /// Creates an empty block builder.
    pub fn new() -> Self {
        BlockBuilder { stmts: Vec::new() }
    }

    /// Appends a raw statement.
    pub fn push(&mut self, stmt: Stmt) -> &mut Self {
        self.stmts.push(stmt);
        self
    }

    /// `buf[idx...] = rhs`
    pub fn assign(&mut self, buf: impl Into<Sym>, idx: Vec<Expr>, rhs: Expr) -> &mut Self {
        self.push(Stmt::Assign {
            buf: buf.into(),
            idx,
            rhs,
        })
    }

    /// `buf[idx...] += rhs`
    pub fn reduce(&mut self, buf: impl Into<Sym>, idx: Vec<Expr>, rhs: Expr) -> &mut Self {
        self.push(Stmt::Reduce {
            buf: buf.into(),
            idx,
            rhs,
        })
    }

    /// `name: ty[dims...] @ mem`
    pub fn alloc(
        &mut self,
        name: impl Into<Sym>,
        ty: DataType,
        dims: Vec<Expr>,
        mem: Mem,
    ) -> &mut Self {
        self.push(Stmt::Alloc {
            name: name.into(),
            ty,
            dims,
            mem,
        })
    }

    /// `for iter in seq(lo, hi): body`
    pub fn for_(
        &mut self,
        iter: impl Into<Sym>,
        lo: Expr,
        hi: Expr,
        body: impl FnOnce(&mut BlockBuilder),
    ) -> &mut Self {
        let mut inner = BlockBuilder::new();
        body(&mut inner);
        self.push(Stmt::For {
            iter: iter.into(),
            lo,
            hi,
            body: inner.build(),
            parallel: false,
        })
    }

    /// `if cond: then`
    pub fn if_(&mut self, cond: Expr, then: impl FnOnce(&mut BlockBuilder)) -> &mut Self {
        let mut inner = BlockBuilder::new();
        then(&mut inner);
        self.push(Stmt::If {
            cond,
            then_body: inner.build(),
            else_body: Block::new(),
        })
    }

    /// `if cond: then else: orelse`
    pub fn if_else(
        &mut self,
        cond: Expr,
        then: impl FnOnce(&mut BlockBuilder),
        orelse: impl FnOnce(&mut BlockBuilder),
    ) -> &mut Self {
        let mut t = BlockBuilder::new();
        then(&mut t);
        let mut e = BlockBuilder::new();
        orelse(&mut e);
        self.push(Stmt::If {
            cond,
            then_body: t.build(),
            else_body: e.build(),
        })
    }

    /// A call statement.
    pub fn call(&mut self, proc: impl Into<String>, args: Vec<Expr>) -> &mut Self {
        self.push(Stmt::Call {
            proc: proc.into(),
            args,
        })
    }

    /// The empty statement.
    pub fn pass(&mut self) -> &mut Self {
        self.push(Stmt::Pass)
    }

    /// `config.field = value`
    pub fn write_config(
        &mut self,
        config: impl Into<Sym>,
        field: impl Into<String>,
        value: Expr,
    ) -> &mut Self {
        self.push(Stmt::WriteConfig {
            config: config.into(),
            field: field.into(),
            value,
        })
    }

    /// Convenience: a buffer-read expression, identical to [`crate::read`].
    /// Provided on the builder so closures do not need extra imports.
    pub fn read(&self, buf: impl Into<Sym>, idx: Vec<Expr>) -> Expr {
        read(buf, idx)
    }

    /// Finalizes the block.
    pub fn build(self) -> Block {
        Block::from_stmts(self.stmts)
    }
}

/// Builds a [`Proc`].
///
/// ```
/// use exo_ir::{ProcBuilder, DataType, Mem, var, ib, read};
///
/// let dot = ProcBuilder::new("sdot")
///     .size_arg("n")
///     .tensor_arg("x", DataType::F32, vec![var("n")], Mem::Dram)
///     .tensor_arg("y", DataType::F32, vec![var("n")], Mem::Dram)
///     .tensor_arg("out", DataType::F32, vec![], Mem::Dram)
///     .for_("i", ib(0), var("n"), |b| {
///         b.reduce("out", vec![], read("x", vec![var("i")]) * read("y", vec![var("i")]));
///     })
///     .build();
/// assert_eq!(dot.args().len(), 4);
/// ```
#[derive(Debug)]
pub struct ProcBuilder {
    name: String,
    args: Vec<ProcArg>,
    preds: Vec<Expr>,
    body: BlockBuilder,
    instr: Option<InstrInfo>,
}

impl ProcBuilder {
    /// Starts building a procedure with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProcBuilder {
            name: name.into(),
            args: Vec::new(),
            preds: Vec::new(),
            body: BlockBuilder::new(),
            instr: None,
        }
    }

    /// Declares a `size` argument.
    pub fn size_arg(mut self, name: impl Into<Sym>) -> Self {
        self.args.push(ProcArg {
            name: name.into(),
            kind: ArgKind::Size,
        });
        self
    }

    /// Declares a scalar argument.
    pub fn scalar_arg(mut self, name: impl Into<Sym>, ty: DataType) -> Self {
        self.args.push(ProcArg {
            name: name.into(),
            kind: ArgKind::Scalar { ty },
        });
        self
    }

    /// Declares a dense tensor argument.
    pub fn tensor_arg(
        mut self,
        name: impl Into<Sym>,
        ty: DataType,
        dims: Vec<Expr>,
        mem: Mem,
    ) -> Self {
        self.args.push(ProcArg {
            name: name.into(),
            kind: ArgKind::Tensor {
                ty,
                dims,
                mem,
                window: false,
            },
        });
        self
    }

    /// Declares a windowed tensor argument (`[f32][M, N]` in Exo syntax).
    pub fn window_arg(
        mut self,
        name: impl Into<Sym>,
        ty: DataType,
        dims: Vec<Expr>,
        mem: Mem,
    ) -> Self {
        self.args.push(ProcArg {
            name: name.into(),
            kind: ArgKind::Tensor {
                ty,
                dims,
                mem,
                window: true,
            },
        });
        self
    }

    /// Adds an assertion precondition.
    pub fn assert_(mut self, pred: Expr) -> Self {
        self.preds.push(pred);
        self
    }

    /// Adds a `for` loop to the procedure body.
    pub fn for_(
        mut self,
        iter: impl Into<Sym>,
        lo: Expr,
        hi: Expr,
        body: impl FnOnce(&mut BlockBuilder),
    ) -> Self {
        self.body.for_(iter, lo, hi, body);
        self
    }

    /// Adds an arbitrary statement to the procedure body.
    pub fn stmt(mut self, stmt: Stmt) -> Self {
        self.body.push(stmt);
        self
    }

    /// Gives mutable access to the body builder for free-form construction.
    pub fn with_body(mut self, f: impl FnOnce(&mut BlockBuilder)) -> Self {
        f(&mut self.body);
        self
    }

    /// Marks the procedure as an instruction procedure.
    pub fn instr(mut self, cost_class: impl Into<String>, c_template: impl Into<String>) -> Self {
        self.instr = Some(InstrInfo {
            cost_class: cost_class.into(),
            c_template: c_template.into(),
        });
        self
    }

    /// Finalizes the procedure.
    pub fn build(self) -> Proc {
        let p = Proc::new(self.name, self.args, self.preds, self.body.build());
        match self.instr {
            Some(info) => p.with_instr(info),
            None => p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{ib, var};

    #[test]
    fn builder_produces_expected_structure() {
        let p = ProcBuilder::new("k")
            .size_arg("n")
            .tensor_arg("x", DataType::F32, vec![var("n")], Mem::Dram)
            .assert_(Expr::eq_(Expr::modulo(var("n"), ib(8)), ib(0)))
            .for_("i", ib(0), var("n"), |b| {
                b.assign("x", vec![var("i")], Expr::Float(0.0));
            })
            .build();
        assert_eq!(p.args().len(), 2);
        assert_eq!(p.preds().len(), 1);
        assert_eq!(p.body().len(), 1);
        assert_eq!(p.stmt_count(), 2);
    }

    #[test]
    fn nested_control_flow() {
        let p = ProcBuilder::new("k")
            .size_arg("n")
            .tensor_arg("x", DataType::F32, vec![var("n")], Mem::Dram)
            .with_body(|b| {
                b.for_("i", ib(0), var("n"), |b| {
                    b.if_else(
                        Expr::lt(var("i"), ib(4)),
                        |t| {
                            t.assign("x", vec![var("i")], Expr::Float(1.0));
                        },
                        |e| {
                            e.pass();
                        },
                    );
                });
            })
            .build();
        let s = format!("{p}");
        assert!(s.contains("if i < 4:"), "{s}");
        assert!(s.contains("else:"), "{s}");
    }

    #[test]
    fn instr_builder() {
        let p = ProcBuilder::new("mm256_loadu_ps")
            .window_arg("dst", DataType::F32, vec![ib(8)], Mem::VecAvx2)
            .window_arg("src", DataType::F32, vec![ib(8)], Mem::Dram)
            .instr("avx2_load", "{dst} = _mm256_loadu_ps(&{src});")
            .with_body(|b| {
                b.for_("i", ib(0), ib(8), |b| {
                    b.assign("dst", vec![var("i")], b.read("src", vec![var("i")]));
                });
            })
            .build();
        assert!(p.is_instr());
    }
}
