//! Python-like pretty printer for procedures, matching the Exo syntax the
//! paper uses in its object-code listings.

use crate::proc::{ArgKind, Proc};
use crate::stmt::{Block, Stmt};
use std::fmt;

impl fmt::Display for Proc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let args: Vec<String> = self
            .args()
            .iter()
            .map(|a| match &a.kind {
                ArgKind::Size => format!("{}: size", a.name),
                ArgKind::Scalar { ty } => format!("{}: {}", a.name, ty),
                ArgKind::Tensor {
                    ty,
                    dims,
                    mem,
                    window,
                } => {
                    let dim_s: Vec<String> = dims.iter().map(|d| d.to_string()).collect();
                    let brackets = if dim_s.is_empty() {
                        String::new()
                    } else {
                        format!("[{}]", dim_s.join(", "))
                    };
                    if *window {
                        format!("{}: [{}]{} @ {}", a.name, ty, brackets, mem)
                    } else {
                        format!("{}: {}{} @ {}", a.name, ty, brackets, mem)
                    }
                }
            })
            .collect();
        writeln!(f, "def {}({}):", self.name(), args.join(", "))?;
        for pred in self.preds() {
            writeln!(f, "    assert {pred}")?;
        }
        if self.body().is_empty() {
            writeln!(f, "    pass")?;
        } else {
            write_block(f, self.body(), 1)?;
        }
        Ok(())
    }
}

fn write_block(f: &mut fmt::Formatter<'_>, block: &Block, indent: usize) -> fmt::Result {
    for stmt in block.iter() {
        write_stmt(f, stmt, indent)?;
    }
    Ok(())
}

fn write_stmt(f: &mut fmt::Formatter<'_>, stmt: &Stmt, indent: usize) -> fmt::Result {
    let pad = "    ".repeat(indent);
    match stmt {
        Stmt::Assign { buf, idx, rhs } => {
            writeln!(f, "{pad}{} = {rhs}", dest(buf.name(), idx))
        }
        Stmt::Reduce { buf, idx, rhs } => {
            writeln!(f, "{pad}{} += {rhs}", dest(buf.name(), idx))
        }
        Stmt::Alloc {
            name,
            ty,
            dims,
            mem,
        } => {
            if dims.is_empty() {
                writeln!(f, "{pad}{name}: {ty} @ {mem}")
            } else {
                let ds: Vec<String> = dims.iter().map(|d| d.to_string()).collect();
                writeln!(f, "{pad}{name}: {ty}[{}] @ {mem}", ds.join(", "))
            }
        }
        Stmt::For {
            iter,
            lo,
            hi,
            body,
            parallel,
        } => {
            let kw = if *parallel { "par" } else { "seq" };
            writeln!(f, "{pad}for {iter} in {kw}({lo}, {hi}):")?;
            if body.is_empty() {
                writeln!(f, "{pad}    pass")
            } else {
                write_block(f, body, indent + 1)
            }
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            writeln!(f, "{pad}if {cond}:")?;
            if then_body.is_empty() {
                writeln!(f, "{pad}    pass")?;
            } else {
                write_block(f, then_body, indent + 1)?;
            }
            if !else_body.is_empty() {
                writeln!(f, "{pad}else:")?;
                write_block(f, else_body, indent + 1)?;
            }
            Ok(())
        }
        Stmt::Call { proc, args } => {
            let a: Vec<String> = args.iter().map(|e| e.to_string()).collect();
            writeln!(f, "{pad}{proc}({})", a.join(", "))
        }
        Stmt::Pass => writeln!(f, "{pad}pass"),
        Stmt::WriteConfig {
            config,
            field,
            value,
        } => {
            writeln!(f, "{pad}{config}.{field} = {value}")
        }
        Stmt::WindowStmt { name, rhs } => writeln!(f, "{pad}{name} = {rhs}"),
    }
}

fn dest(buf: &str, idx: &[crate::expr::Expr]) -> String {
    if idx.is_empty() {
        buf.to_string()
    } else {
        let parts: Vec<String> = idx.iter().map(|e| e.to_string()).collect();
        format!("{buf}[{}]", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ProcBuilder;
    use crate::expr::{ib, read, var, Expr};
    use crate::types::{DataType, Mem};

    #[test]
    fn gemv_prints_like_the_paper() {
        let p = ProcBuilder::new("gemv")
            .size_arg("M")
            .size_arg("N")
            .tensor_arg("A", DataType::F32, vec![var("M"), var("N")], Mem::Dram)
            .tensor_arg("x", DataType::F32, vec![var("N")], Mem::Dram)
            .tensor_arg("y", DataType::F32, vec![var("M")], Mem::Dram)
            .assert_(Expr::eq_(Expr::modulo(var("M"), ib(8)), ib(0)))
            .for_("i", ib(0), var("M"), |b| {
                b.for_("j", ib(0), var("N"), |b| {
                    let rhs = read("A", vec![var("i"), var("j")]) * read("x", vec![var("j")]);
                    b.reduce("y", vec![var("i")], rhs);
                });
            })
            .build();
        let s = format!("{p}");
        assert!(
            s.contains("def gemv(M: size, N: size, A: f32[M, N] @ DRAM"),
            "{s}"
        );
        assert!(s.contains("assert M % 8 == 0"), "{s}");
        assert!(s.contains("for i in seq(0, M):"), "{s}");
        assert!(s.contains("y[i] += A[i, j] * x[j]"), "{s}");
    }

    #[test]
    fn empty_bodies_print_pass() {
        let p = ProcBuilder::new("empty").build();
        assert!(format!("{p}").contains("pass"));
    }

    #[test]
    fn alloc_and_call_printing() {
        let p = ProcBuilder::new("k")
            .with_body(|b| {
                b.alloc("tmp", DataType::F32, vec![ib(16)], Mem::VecAvx512);
                b.call("mm512_loadu_ps", vec![var("tmp"), var("x")]);
                b.write_config("cfg", "stride", ib(1));
            })
            .build();
        let s = format!("{p}");
        assert!(s.contains("tmp: f32[16] @ VEC_AVX512"), "{s}");
        assert!(s.contains("mm512_loadu_ps(tmp, x)"), "{s}");
        assert!(s.contains("cfg.stride = 1"), "{s}");
    }
}
