//! Structural traversal, substitution, and renaming utilities.

use crate::expr::{Expr, WAccess};
use crate::stmt::{Block, Stmt};
use crate::sym::Sym;

/// Replaces every *variable* occurrence of `sym` in the expression with
/// `val`. Buffer names, stride references and config references are left
/// unchanged (those are renamed with [`rename_sym`]).
pub fn substitute_expr(e: Expr, sym: &Sym, val: &Expr) -> Expr {
    match e {
        Expr::Var(ref s) if s == sym => val.clone(),
        Expr::Int(_)
        | Expr::Float(_)
        | Expr::Bool(_)
        | Expr::Var(_)
        | Expr::Stride { .. }
        | Expr::ReadConfig { .. } => e,
        Expr::Read { buf, idx } => Expr::Read {
            buf,
            idx: idx
                .into_iter()
                .map(|i| substitute_expr(i, sym, val))
                .collect(),
        },
        Expr::Window { buf, idx } => Expr::Window {
            buf,
            idx: idx
                .into_iter()
                .map(|w| match w {
                    WAccess::Point(e) => WAccess::Point(substitute_expr(e, sym, val)),
                    WAccess::Interval(lo, hi) => WAccess::Interval(
                        substitute_expr(lo, sym, val),
                        substitute_expr(hi, sym, val),
                    ),
                })
                .collect(),
        },
        Expr::Bin { op, lhs, rhs } => Expr::Bin {
            op,
            lhs: Box::new(substitute_expr(*lhs, sym, val)),
            rhs: Box::new(substitute_expr(*rhs, sym, val)),
        },
        Expr::Un { op, arg } => Expr::Un {
            op,
            arg: Box::new(substitute_expr(*arg, sym, val)),
        },
    }
}

/// Replaces every variable occurrence of `sym` with `val` throughout a
/// statement (recursively). Loop iterators that *shadow* `sym` stop the
/// substitution in their body.
pub fn substitute_var(stmt: Stmt, sym: &Sym, val: &Expr) -> Stmt {
    let sub = |e: Expr| substitute_expr(e, sym, val);
    match stmt {
        Stmt::Assign { buf, idx, rhs } => Stmt::Assign {
            buf,
            idx: idx.into_iter().map(sub).collect(),
            rhs: substitute_expr(rhs, sym, val),
        },
        Stmt::Reduce { buf, idx, rhs } => Stmt::Reduce {
            buf,
            idx: idx.into_iter().map(sub).collect(),
            rhs: substitute_expr(rhs, sym, val),
        },
        Stmt::Alloc {
            name,
            ty,
            dims,
            mem,
        } => Stmt::Alloc {
            name,
            ty,
            dims: dims.into_iter().map(sub).collect(),
            mem,
        },
        Stmt::For {
            iter,
            lo,
            hi,
            body,
            parallel,
        } => {
            let lo = substitute_expr(lo, sym, val);
            let hi = substitute_expr(hi, sym, val);
            if &iter == sym {
                // The iterator shadows `sym`: do not substitute inside the body.
                Stmt::For {
                    iter,
                    lo,
                    hi,
                    body,
                    parallel,
                }
            } else {
                Stmt::For {
                    iter,
                    lo,
                    hi,
                    body: substitute_block(body, sym, val),
                    parallel,
                }
            }
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => Stmt::If {
            cond: substitute_expr(cond, sym, val),
            then_body: substitute_block(then_body, sym, val),
            else_body: substitute_block(else_body, sym, val),
        },
        Stmt::Call { proc, args } => Stmt::Call {
            proc,
            args: args.into_iter().map(sub).collect(),
        },
        Stmt::Pass => Stmt::Pass,
        Stmt::WriteConfig {
            config,
            field,
            value,
        } => Stmt::WriteConfig {
            config,
            field,
            value: substitute_expr(value, sym, val),
        },
        Stmt::WindowStmt { name, rhs } => Stmt::WindowStmt {
            name,
            rhs: substitute_expr(rhs, sym, val),
        },
    }
}

/// Substitutes within every statement of a block.
pub fn substitute_block(block: Block, sym: &Sym, val: &Expr) -> Block {
    block
        .into_stmts()
        .into_iter()
        .map(|s| substitute_var(s, sym, val))
        .collect()
}

/// Renames a symbol everywhere it appears — as a variable, buffer name,
/// iterator, stride target or config struct.
pub fn rename_sym(stmt: Stmt, old: &Sym, new: &Sym) -> Stmt {
    let rn = |s: Sym| if &s == old { new.clone() } else { s };
    let re = |e: Expr| rename_expr(e, old, new);
    match stmt {
        Stmt::Assign { buf, idx, rhs } => Stmt::Assign {
            buf: rn(buf),
            idx: idx.into_iter().map(re).collect(),
            rhs: rename_expr(rhs, old, new),
        },
        Stmt::Reduce { buf, idx, rhs } => Stmt::Reduce {
            buf: rn(buf),
            idx: idx.into_iter().map(re).collect(),
            rhs: rename_expr(rhs, old, new),
        },
        Stmt::Alloc {
            name,
            ty,
            dims,
            mem,
        } => Stmt::Alloc {
            name: rn(name),
            ty,
            dims: dims.into_iter().map(re).collect(),
            mem,
        },
        Stmt::For {
            iter,
            lo,
            hi,
            body,
            parallel,
        } => Stmt::For {
            iter: rn(iter),
            lo: rename_expr(lo, old, new),
            hi: rename_expr(hi, old, new),
            body: body
                .into_stmts()
                .into_iter()
                .map(|s| rename_sym(s, old, new))
                .collect(),
            parallel,
        },
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => Stmt::If {
            cond: rename_expr(cond, old, new),
            then_body: then_body
                .into_stmts()
                .into_iter()
                .map(|s| rename_sym(s, old, new))
                .collect(),
            else_body: else_body
                .into_stmts()
                .into_iter()
                .map(|s| rename_sym(s, old, new))
                .collect(),
        },
        Stmt::Call { proc, args } => Stmt::Call {
            proc,
            args: args.into_iter().map(re).collect(),
        },
        Stmt::Pass => Stmt::Pass,
        Stmt::WriteConfig {
            config,
            field,
            value,
        } => Stmt::WriteConfig {
            config: rn(config),
            field,
            value: rename_expr(value, old, new),
        },
        Stmt::WindowStmt { name, rhs } => Stmt::WindowStmt {
            name: rn(name),
            rhs: rename_expr(rhs, old, new),
        },
    }
}

/// Renames a symbol within an expression, including buffer names.
pub fn rename_expr(e: Expr, old: &Sym, new: &Sym) -> Expr {
    let rn = |s: Sym| if &s == old { new.clone() } else { s };
    match e {
        Expr::Var(s) => Expr::Var(rn(s)),
        Expr::Read { buf, idx } => Expr::Read {
            buf: rn(buf),
            idx: idx.into_iter().map(|i| rename_expr(i, old, new)).collect(),
        },
        Expr::Window { buf, idx } => Expr::Window {
            buf: rn(buf),
            idx: idx
                .into_iter()
                .map(|w| match w {
                    WAccess::Point(e) => WAccess::Point(rename_expr(e, old, new)),
                    WAccess::Interval(lo, hi) => {
                        WAccess::Interval(rename_expr(lo, old, new), rename_expr(hi, old, new))
                    }
                })
                .collect(),
        },
        Expr::Bin { op, lhs, rhs } => Expr::Bin {
            op,
            lhs: Box::new(rename_expr(*lhs, old, new)),
            rhs: Box::new(rename_expr(*rhs, old, new)),
        },
        Expr::Un { op, arg } => Expr::Un {
            op,
            arg: Box::new(rename_expr(*arg, old, new)),
        },
        Expr::Stride { buf, dim } => Expr::Stride { buf: rn(buf), dim },
        Expr::ReadConfig { config, field } => Expr::ReadConfig {
            config: rn(config),
            field,
        },
        other => other,
    }
}

/// Calls `f` on every expression occurring in the statement, recursively
/// (including expressions in nested statements).
pub fn for_each_expr(stmt: &Stmt, f: &mut impl FnMut(&Expr)) {
    let mut visit = |e: &Expr| visit_expr(e, f);
    match stmt {
        Stmt::Assign { idx, rhs, .. } | Stmt::Reduce { idx, rhs, .. } => {
            idx.iter().for_each(&mut visit);
            visit(rhs);
        }
        Stmt::Alloc { dims, .. } => dims.iter().for_each(&mut visit),
        Stmt::For { lo, hi, body, .. } => {
            visit(lo);
            visit(hi);
            body.iter().for_each(|s| for_each_expr(s, f));
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            visit(cond);
            then_body.iter().for_each(|s| for_each_expr(s, f));
            else_body.iter().for_each(|s| for_each_expr(s, f));
        }
        Stmt::Call { args, .. } => args.iter().for_each(&mut visit),
        Stmt::Pass => {}
        Stmt::WriteConfig { value, .. } => visit(value),
        Stmt::WindowStmt { rhs, .. } => visit(rhs),
    }
}

fn visit_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Read { idx, .. } => idx.iter().for_each(|i| visit_expr(i, f)),
        Expr::Window { idx, .. } => idx.iter().for_each(|w| match w {
            WAccess::Point(e) => visit_expr(e, f),
            WAccess::Interval(lo, hi) => {
                visit_expr(lo, f);
                visit_expr(hi, f);
            }
        }),
        Expr::Bin { lhs, rhs, .. } => {
            visit_expr(lhs, f);
            visit_expr(rhs, f);
        }
        Expr::Un { arg, .. } => visit_expr(arg, f),
        _ => {}
    }
}

/// Calls `f` on every statement rooted at `stmt` (pre-order, including
/// `stmt` itself).
pub fn for_each_stmt(stmt: &Stmt, f: &mut impl FnMut(&Stmt)) {
    f(stmt);
    for block in stmt.child_blocks() {
        for s in block.iter() {
            for_each_stmt(s, f);
        }
    }
}

/// Collects every `(buffer, index)` pair read anywhere under `stmt`.
/// Window arguments to calls are treated as both reads and writes by the
/// effect analysis; here they are reported as reads.
pub fn collect_reads(stmt: &Stmt) -> Vec<(Sym, Vec<Expr>)> {
    let mut out = Vec::new();
    for_each_stmt(stmt, &mut |s| {
        for_each_expr_local(s, &mut |e| {
            if let Expr::Read { buf, idx } = e {
                out.push((buf.clone(), idx.clone()));
            }
        });
    });
    out
}

/// Collects every `(buffer, index)` pair written (assigned or reduced)
/// anywhere under `stmt`.
pub fn collect_writes(stmt: &Stmt) -> Vec<(Sym, Vec<Expr>)> {
    let mut out = Vec::new();
    for_each_stmt(stmt, &mut |s| match s {
        Stmt::Assign { buf, idx, .. } | Stmt::Reduce { buf, idx, .. } => {
            out.push((buf.clone(), idx.clone()))
        }
        _ => {}
    });
    out
}

/// Collects the textual name of every symbol occurring anywhere in the
/// procedure: arguments, assertion mentions, allocation / iterator /
/// window-alias binding sites, and every buffer, variable, stride or
/// config occurrence in statements and expressions.
///
/// This is the "used names" set that [`crate::Proc::fresh_sym`] keeps
/// fresh names disjoint from.
pub fn collect_sym_names(proc: &crate::proc::Proc) -> std::collections::BTreeSet<String> {
    fn note_expr(e: &Expr, out: &mut std::collections::BTreeSet<String>) {
        match e {
            Expr::Var(s) | Expr::Stride { buf: s, .. } | Expr::ReadConfig { config: s, .. } => {
                out.insert(s.name().to_string());
            }
            Expr::Read { buf, .. } | Expr::Window { buf, .. } => {
                out.insert(buf.name().to_string());
            }
            _ => {}
        }
    }
    let mut out = std::collections::BTreeSet::new();
    for arg in proc.args() {
        out.insert(arg.name.name().to_string());
    }
    for pred in proc.preds() {
        visit_expr(pred, &mut |e| note_expr(e, &mut out));
    }
    for stmt in proc.body().iter() {
        for_each_stmt(stmt, &mut |s| {
            match s {
                Stmt::Assign { buf, .. } | Stmt::Reduce { buf, .. } => {
                    out.insert(buf.name().to_string());
                }
                Stmt::Alloc { name, .. } | Stmt::WindowStmt { name, .. } => {
                    out.insert(name.name().to_string());
                }
                Stmt::For { iter, .. } => {
                    out.insert(iter.name().to_string());
                }
                Stmt::WriteConfig { config, .. } => {
                    out.insert(config.name().to_string());
                }
                Stmt::If { .. } | Stmt::Call { .. } | Stmt::Pass => {}
            }
            for_each_expr_local(s, &mut |e| note_expr(e, &mut out));
        });
    }
    out
}

/// Like [`for_each_expr`] but does not recurse into nested statements
/// (used when the caller already walks statements separately).
fn for_each_expr_local(stmt: &Stmt, f: &mut impl FnMut(&Expr)) {
    let mut visit = |e: &Expr| visit_expr(e, f);
    match stmt {
        Stmt::Assign { idx, rhs, .. } | Stmt::Reduce { idx, rhs, .. } => {
            idx.iter().for_each(&mut visit);
            visit(rhs);
        }
        Stmt::Alloc { dims, .. } => dims.iter().for_each(&mut visit),
        Stmt::For { lo, hi, .. } => {
            visit(lo);
            visit(hi);
        }
        Stmt::If { cond, .. } => visit(cond),
        Stmt::Call { args, .. } => args.iter().for_each(&mut visit),
        Stmt::Pass => {}
        Stmt::WriteConfig { value, .. } => visit(value),
        Stmt::WindowStmt { rhs, .. } => visit(rhs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{ib, read, var};

    fn loop_stmt() -> Stmt {
        Stmt::For {
            iter: Sym::new("i"),
            lo: ib(0),
            hi: var("n"),
            body: Block::from_stmts(vec![Stmt::Reduce {
                buf: Sym::new("y"),
                idx: vec![var("i")],
                rhs: read("A", vec![var("i"), var("j")]) * read("x", vec![var("j")]),
            }]),
            parallel: false,
        }
    }

    #[test]
    fn substitute_respects_shadowing() {
        let s = loop_stmt();
        // Substituting the iterator `i` must not touch the body (it is shadowed).
        let s2 = substitute_var(s.clone(), &Sym::new("i"), &ib(7));
        assert_eq!(s, s2);
        // Substituting `j` rewrites the body.
        let s3 = substitute_var(s, &Sym::new("j"), &ib(3));
        let reads = collect_reads(&s3);
        assert!(reads
            .iter()
            .any(|(b, idx)| b == &Sym::new("x") && idx == &vec![ib(3)]));
    }

    #[test]
    fn substitute_loop_bound() {
        let s = loop_stmt();
        let s2 = substitute_var(s, &Sym::new("n"), &ib(16));
        match s2 {
            Stmt::For { hi, .. } => assert_eq!(hi, ib(16)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn rename_buffer_everywhere() {
        let s = loop_stmt();
        let s2 = rename_sym(s, &Sym::new("x"), &Sym::new("x_vec"));
        let reads = collect_reads(&s2);
        assert!(reads.iter().any(|(b, _)| b == &Sym::new("x_vec")));
        assert!(!reads.iter().any(|(b, _)| b == &Sym::new("x")));
    }

    #[test]
    fn collect_reads_and_writes() {
        let s = loop_stmt();
        let reads = collect_reads(&s);
        assert_eq!(reads.len(), 2);
        let writes = collect_writes(&s);
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].0, Sym::new("y"));
    }

    #[test]
    fn for_each_stmt_visits_nested() {
        let s = loop_stmt();
        let mut n = 0;
        for_each_stmt(&s, &mut |_| n += 1);
        assert_eq!(n, 2);
    }
}
