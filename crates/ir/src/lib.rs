//! # exo-ir — the Exo object language
//!
//! This crate defines the *object language* that Exo 2 schedules operate on:
//! a small, explicitly-loop-based imperative IR for dense numerical kernels.
//! Procedures ([`Proc`]) contain sequential `for` loops, buffer allocations,
//! assignments and reductions into multi-dimensional buffers, conditionals,
//! calls to other procedures (including *instruction procedures* that model
//! hardware intrinsics), and configuration-register writes for stateful
//! accelerators.
//!
//! The design mirrors the Exo IR described in the paper
//! *"Exo 2: Growing a Scheduling Language"* (ASPLOS 2025), §2:
//!
//! ```text
//! def gemv(M: size, N: size,
//!          A: f32[M, N] @DRAM, x: f32[N] @DRAM, y: f32[M] @DRAM):
//!     assert M % 8 == 0
//!     for i in seq(0, M):
//!         for j in seq(0, N):
//!             y[i] += A[i, j] * x[j]
//! ```
//!
//! The crate provides:
//!
//! * the AST ([`Expr`], [`Stmt`], [`Block`], [`Proc`]),
//! * value types and memory spaces ([`DataType`], [`Mem`]),
//! * a builder API ([`ProcBuilder`]) and expression helpers for constructing
//!   object code in Rust,
//! * a Python-like pretty printer (`Display` on [`Proc`]),
//! * path-based navigation and editing ([`Step`], [`NodeRef`], splicing
//!   helpers) used by the cursor machinery in `exo-cursors`,
//! * structural visitors and substitution utilities.
//!
//! Scheduling (rewriting procedures while preserving semantics) lives in
//! `exo-core`; this crate is purely the data model.
//!
//! # Example
//!
//! ```
//! use exo_ir::{ProcBuilder, DataType, Mem, var, ib};
//!
//! // for i in seq(0, n): y[i] += a * x[i]
//! let axpy = ProcBuilder::new("saxpy")
//!     .size_arg("n")
//!     .scalar_arg("a", DataType::F32)
//!     .tensor_arg("x", DataType::F32, vec![var("n")], Mem::Dram)
//!     .tensor_arg("y", DataType::F32, vec![var("n")], Mem::Dram)
//!     .for_("i", ib(0), var("n"), |b| {
//!         let rhs = var("a") * b.read("x", vec![var("i")]);
//!         b.reduce("y", vec![var("i")], rhs);
//!     })
//!     .build();
//! assert_eq!(axpy.name(), "saxpy");
//! assert!(format!("{axpy}").contains("y[i] += a * x[i]"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod expr;
mod path;
mod print;
mod proc;
mod size;
mod stmt;
mod sym;
mod types;
mod visit;

pub use builder::{BlockBuilder, ProcBuilder};
pub use expr::{fb, format_float, ib, read, var, BinOp, Expr, UnOp, WAccess};
pub use path::{
    for_each_stmt_paths, for_each_stmt_paths_under, for_each_stmt_paths_until, resolve_block,
    resolve_block_mut, resolve_container, resolve_container_mut, resolve_expr, resolve_stmt,
    resolve_stmt_mut, splice_at, ExprStep, NodeRef, Step,
};
pub use proc::{ArgKind, InstrInfo, Proc, ProcArg};
pub use size::{block_bytes, deep_unshare, proc_retained_bytes};
pub use stmt::{Block, Stmt};
pub use sym::Sym;
pub use types::{DataType, Mem};
pub use visit::{
    collect_reads, collect_sym_names, collect_writes, for_each_expr, for_each_stmt, rename_expr,
    rename_sym, substitute_block, substitute_expr, substitute_var,
};
