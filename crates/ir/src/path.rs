//! Path-based navigation into a procedure's AST.
//!
//! The cursor mechanism of the paper (§5.2) represents the *spatial
//! coordinate* of a cursor as a downward path through the AST: each step
//! selects a labeled child and, when the child is a statement list, an
//! index into it. This module provides that path representation for
//! statements ([`Step`]) and expressions ([`ExprStep`]) together with
//! resolution and mutation helpers. Versioning, forwarding, and the public
//! cursor API live in `exo-cursors`.

use crate::expr::{Expr, WAccess};
use crate::proc::Proc;
use crate::stmt::{Block, Stmt};

/// One downward step selecting a statement.
///
/// At the root, `Body(i)` selects the `i`-th statement of the procedure
/// body. Below a `for` loop or the then-branch of an `if`, `Body(i)`
/// selects the `i`-th statement of that block; `Else(i)` selects the
/// `i`-th statement of an `if`'s else-branch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Step {
    /// Index into a procedure body, loop body, or `if` then-branch.
    Body(usize),
    /// Index into an `if` else-branch.
    Else(usize),
}

impl Step {
    /// The index within the selected block.
    pub fn index(self) -> usize {
        match self {
            Step::Body(i) | Step::Else(i) => i,
        }
    }

    /// The same step with a different index.
    pub fn with_index(self, i: usize) -> Step {
        match self {
            Step::Body(_) => Step::Body(i),
            Step::Else(_) => Step::Else(i),
        }
    }
}

/// One downward step selecting an expression inside a statement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ExprStep {
    /// The right-hand side of an assign / reduce / window statement, or the
    /// value of a `write_config`.
    Rhs,
    /// The condition of an `if`.
    Cond,
    /// The lower bound of a `for`.
    Lo,
    /// The upper bound of a `for`.
    Hi,
    /// The `i`-th index expression of an assign / reduce destination.
    Idx(usize),
    /// The `i`-th dimension expression of an alloc.
    Dim(usize),
    /// The left operand of a binary expression.
    BinLhs,
    /// The right operand of a binary expression.
    BinRhs,
    /// The operand of a unary expression.
    UnArg,
    /// The `i`-th argument of a call.
    CallArg(usize),
    /// The `i`-th index expression inside a buffer-read expression.
    ReadIdx(usize),
}

/// A reference to a resolved AST node.
#[derive(Clone, Copy, Debug)]
pub enum NodeRef<'a> {
    /// A statement.
    Stmt(&'a Stmt),
    /// An expression.
    Expr(&'a Expr),
    /// A statement block.
    Block(&'a Block),
}

/// Resolves a statement path against a procedure.
pub fn resolve_stmt<'a>(proc: &'a Proc, path: &[Step]) -> Option<&'a Stmt> {
    let (first, rest) = path.split_first()?;
    let mut stmt = match first {
        Step::Body(i) => proc.body().get(*i)?,
        Step::Else(_) => return None,
    };
    for step in rest {
        stmt = child_stmt(stmt, *step)?;
    }
    Some(stmt)
}

/// Resolves a statement path against a procedure, mutably.
///
/// Blocks are structurally shared ([`Block`] is copy-on-write), so walking
/// down mutably un-shares exactly the blocks on the path from the root to
/// the target — the O(depth) "spine" — while every sibling subtree keeps
/// its storage shared with other procedure versions.
pub fn resolve_stmt_mut<'a>(proc: &'a mut Proc, path: &[Step]) -> Option<&'a mut Stmt> {
    let (first, rest) = path.split_first()?;
    let mut stmt = match first {
        Step::Body(i) => proc.body_mut().stmts_mut().get_mut(*i)?,
        Step::Else(_) => return None,
    };
    for step in rest {
        stmt = child_stmt_mut(stmt, *step)?;
    }
    Some(stmt)
}

fn child_stmt(stmt: &Stmt, step: Step) -> Option<&Stmt> {
    match (stmt, step) {
        (Stmt::For { body, .. }, Step::Body(i)) => body.get(i),
        (Stmt::If { then_body, .. }, Step::Body(i)) => then_body.get(i),
        (Stmt::If { else_body, .. }, Step::Else(i)) => else_body.get(i),
        _ => None,
    }
}

fn child_stmt_mut(stmt: &mut Stmt, step: Step) -> Option<&mut Stmt> {
    match (stmt, step) {
        (Stmt::For { body, .. }, Step::Body(i)) => body.stmts_mut().get_mut(i),
        (Stmt::If { then_body, .. }, Step::Body(i)) => then_body.stmts_mut().get_mut(i),
        (Stmt::If { else_body, .. }, Step::Else(i)) => else_body.stmts_mut().get_mut(i),
        _ => None,
    }
}

/// Resolves the block *containing* the statement addressed by `path`,
/// returning the block and the index of the statement within it.
///
/// The index may equal the block length when `path` addresses a gap at the
/// end of the block (the statement itself then does not exist).
pub fn resolve_container<'a>(proc: &'a Proc, path: &[Step]) -> Option<(&'a Block, usize)> {
    let (last, parents) = path.split_last()?;
    if parents.is_empty() {
        return Some((proc.body(), last.index()));
    }
    let parent = resolve_stmt(proc, parents)?;
    let block = match (parent, last) {
        (Stmt::For { body, .. }, Step::Body(_)) => body,
        (Stmt::If { then_body, .. }, Step::Body(_)) => then_body,
        (Stmt::If { else_body, .. }, Step::Else(_)) => else_body,
        _ => return None,
    };
    Some((block, last.index()))
}

/// Mutable variant of [`resolve_container`].
pub fn resolve_container_mut<'a>(
    proc: &'a mut Proc,
    path: &[Step],
) -> Option<(&'a mut Block, usize)> {
    let (last, parents) = path.split_last()?;
    if parents.is_empty() {
        return Some((proc.body_mut(), last.index()));
    }
    let parent = resolve_stmt_mut(proc, parents)?;
    let block = match (parent, last) {
        (Stmt::For { body, .. }, Step::Body(_)) => body,
        (Stmt::If { then_body, .. }, Step::Body(_)) => then_body,
        (Stmt::If { else_body, .. }, Step::Else(_)) => else_body,
        _ => return None,
    };
    Some((block, last.index()))
}

/// Resolves a block path: the empty path is the procedure body, otherwise
/// the path addresses a statement and this returns its *first* child block
/// (`for` body / `if` then-branch).
pub fn resolve_block<'a>(proc: &'a Proc, path: &[Step]) -> Option<&'a Block> {
    if path.is_empty() {
        return Some(proc.body());
    }
    match resolve_stmt(proc, path)? {
        Stmt::For { body, .. } => Some(body),
        Stmt::If { then_body, .. } => Some(then_body),
        _ => None,
    }
}

/// Mutable variant of [`resolve_block`].
pub fn resolve_block_mut<'a>(proc: &'a mut Proc, path: &[Step]) -> Option<&'a mut Block> {
    if path.is_empty() {
        return Some(proc.body_mut());
    }
    match resolve_stmt_mut(proc, path)? {
        Stmt::For { body, .. } => Some(body),
        Stmt::If { then_body, .. } => Some(then_body),
        _ => None,
    }
}

/// Resolves an expression within the statement at `stmt_path` by following
/// `expr_steps`.
pub fn resolve_expr<'a>(
    proc: &'a Proc,
    stmt_path: &[Step],
    expr_steps: &[ExprStep],
) -> Option<&'a Expr> {
    let stmt = resolve_stmt(proc, stmt_path)?;
    let (first, rest) = expr_steps.split_first()?;
    let mut expr = stmt_expr(stmt, *first)?;
    for step in rest {
        expr = child_expr(expr, *step)?;
    }
    Some(expr)
}

fn stmt_expr(stmt: &Stmt, step: ExprStep) -> Option<&Expr> {
    match (stmt, step) {
        (Stmt::Assign { rhs, .. }, ExprStep::Rhs)
        | (Stmt::Reduce { rhs, .. }, ExprStep::Rhs)
        | (Stmt::WindowStmt { rhs, .. }, ExprStep::Rhs)
        | (Stmt::WriteConfig { value: rhs, .. }, ExprStep::Rhs) => Some(rhs),
        (Stmt::Assign { idx, .. }, ExprStep::Idx(i))
        | (Stmt::Reduce { idx, .. }, ExprStep::Idx(i)) => idx.get(i),
        (Stmt::Alloc { dims, .. }, ExprStep::Dim(i)) => dims.get(i),
        (Stmt::For { lo, .. }, ExprStep::Lo) => Some(lo),
        (Stmt::For { hi, .. }, ExprStep::Hi) => Some(hi),
        (Stmt::If { cond, .. }, ExprStep::Cond) => Some(cond),
        (Stmt::Call { args, .. }, ExprStep::CallArg(i)) => args.get(i),
        _ => None,
    }
}

fn child_expr(expr: &Expr, step: ExprStep) -> Option<&Expr> {
    match (expr, step) {
        (Expr::Bin { lhs, .. }, ExprStep::BinLhs) => Some(lhs),
        (Expr::Bin { rhs, .. }, ExprStep::BinRhs) => Some(rhs),
        (Expr::Un { arg, .. }, ExprStep::UnArg) => Some(arg),
        (Expr::Read { idx, .. }, ExprStep::ReadIdx(i)) => idx.get(i),
        (Expr::Window { idx, .. }, ExprStep::ReadIdx(i)) => idx.get(i).map(|w| match w {
            WAccess::Point(e) => e,
            WAccess::Interval(lo, _) => lo,
        }),
        _ => None,
    }
}

/// Walks every statement of the procedure in pre-order, calling `f` with
/// the statement's path and the statement itself.
pub fn for_each_stmt_paths(proc: &Proc, f: &mut impl FnMut(&[Step], &Stmt)) {
    for_each_stmt_paths_until(proc, &mut |path, stmt| {
        f(path, stmt);
        false
    });
}

/// Pre-order walk that stops as soon as `f` returns `true`. Returns
/// whether the walk was stopped early.
///
/// This is the engine behind early-exit `find`: locating the first (or
/// `#k`-th) match visits only the statements up to the match instead of
/// the whole procedure.
pub fn for_each_stmt_paths_until(proc: &Proc, f: &mut impl FnMut(&[Step], &Stmt) -> bool) -> bool {
    let mut prefix = Vec::new();
    walk_block_until(proc.body(), &mut prefix, Step::Body, f)
}

/// Pre-order walk of the sub-AST rooted at `root` (the root statement
/// included), with full paths from the procedure root and the same
/// early-exit contract as [`for_each_stmt_paths_until`]. Visits nothing if
/// `root` does not resolve.
///
/// A subtree-restricted find visits only the subtree this way, instead of
/// scanning the whole procedure and filtering by path prefix.
pub fn for_each_stmt_paths_under(
    proc: &Proc,
    root: &[Step],
    f: &mut impl FnMut(&[Step], &Stmt) -> bool,
) -> bool {
    let Some(stmt) = resolve_stmt(proc, root) else {
        return false;
    };
    let mut prefix = root.to_vec();
    walk_stmt_until(stmt, &mut prefix, f)
}

fn walk_stmt_until(
    stmt: &Stmt,
    prefix: &mut Vec<Step>,
    f: &mut impl FnMut(&[Step], &Stmt) -> bool,
) -> bool {
    f(prefix, stmt)
        || match stmt {
            Stmt::For { body, .. } => walk_block_until(body, prefix, Step::Body, f),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                walk_block_until(then_body, prefix, Step::Body, f)
                    || walk_block_until(else_body, prefix, Step::Else, f)
            }
            _ => false,
        }
}

fn walk_block_until(
    block: &Block,
    prefix: &mut Vec<Step>,
    make: fn(usize) -> Step,
    f: &mut impl FnMut(&[Step], &Stmt) -> bool,
) -> bool {
    for (i, stmt) in block.iter().enumerate() {
        prefix.push(make(i));
        let stop = walk_stmt_until(stmt, prefix, f);
        prefix.pop();
        if stop {
            return true;
        }
    }
    false
}

/// Replaces the statements `[at, at + removed)` of the block addressed by
/// `container_path_of(path)` with `new_stmts`, where `path` addresses a
/// statement position. Returns `false` (and leaves the procedure
/// unchanged) if the path does not resolve or the range is out of bounds.
pub fn splice_at(proc: &mut Proc, path: &[Step], removed: usize, new_stmts: Vec<Stmt>) -> bool {
    let Some((block, idx)) = resolve_container_mut(proc, path) else {
        return false;
    };
    if idx + removed > block.len() {
        return false;
    }
    block.stmts_mut().splice(idx..idx + removed, new_stmts);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcBuilder;
    use crate::expr::{ib, read, var};
    use crate::types::{DataType, Mem};

    fn nested() -> Proc {
        ProcBuilder::new("p")
            .size_arg("n")
            .tensor_arg("y", DataType::F32, vec![var("n")], Mem::Dram)
            .for_("i", ib(0), var("n"), |b| {
                b.assign("y", vec![var("i")], ib(0).into_float());
                b.for_("j", ib(0), ib(4), |b| {
                    b.reduce("y", vec![var("i")], read("y", vec![var("i")]));
                });
            })
            .build()
    }

    trait IntoFloat {
        fn into_float(self) -> Expr;
    }
    impl IntoFloat for Expr {
        fn into_float(self) -> Expr {
            match self {
                Expr::Int(v) => Expr::Float(v as f64),
                other => other,
            }
        }
    }

    #[test]
    fn resolve_statement_paths() {
        let p = nested();
        let outer = resolve_stmt(&p, &[Step::Body(0)]).unwrap();
        assert!(outer.is_for());
        let assign = resolve_stmt(&p, &[Step::Body(0), Step::Body(0)]).unwrap();
        assert_eq!(assign.kind(), "assign");
        let inner_for = resolve_stmt(&p, &[Step::Body(0), Step::Body(1)]).unwrap();
        assert_eq!(inner_for.loop_iter().unwrap().name(), "j");
        let reduce = resolve_stmt(&p, &[Step::Body(0), Step::Body(1), Step::Body(0)]).unwrap();
        assert_eq!(reduce.kind(), "reduce");
        assert!(resolve_stmt(&p, &[Step::Body(3)]).is_none());
        assert!(resolve_stmt(&p, &[Step::Body(0), Step::Else(0)]).is_none());
    }

    #[test]
    fn resolve_containers() {
        let p = nested();
        let (block, idx) = resolve_container(&p, &[Step::Body(0), Step::Body(1)]).unwrap();
        assert_eq!(block.len(), 2);
        assert_eq!(idx, 1);
        let (root, idx0) = resolve_container(&p, &[Step::Body(0)]).unwrap();
        assert_eq!(root.len(), 1);
        assert_eq!(idx0, 0);
    }

    #[test]
    fn resolve_expressions() {
        let p = nested();
        let hi = resolve_expr(&p, &[Step::Body(0)], &[ExprStep::Hi]).unwrap();
        assert_eq!(hi, &var("n"));
        let rhs = resolve_expr(
            &p,
            &[Step::Body(0), Step::Body(1), Step::Body(0)],
            &[ExprStep::Rhs],
        )
        .unwrap();
        assert!(matches!(rhs, Expr::Read { .. }));
    }

    #[test]
    fn splice_replaces_statements() {
        let mut p = nested();
        let ok = splice_at(
            &mut p,
            &[Step::Body(0), Step::Body(0)],
            1,
            vec![Stmt::Pass, Stmt::Pass],
        );
        assert!(ok);
        let (block, _) = resolve_container(&p, &[Step::Body(0), Step::Body(0)]).unwrap();
        assert_eq!(block.len(), 3);
        assert_eq!(block[0].kind(), "pass");
    }

    #[test]
    fn splice_out_of_bounds_is_rejected() {
        let mut p = nested();
        let before = p.clone();
        assert!(!splice_at(
            &mut p,
            &[Step::Body(0), Step::Body(5)],
            1,
            vec![Stmt::Pass]
        ));
        assert_eq!(p, before);
    }
}
