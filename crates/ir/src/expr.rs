//! Expressions of the object language.

use crate::sym::Sym;
use std::fmt;
use std::ops;

/// Binary operators available in index and value expressions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Integer (floor) division for index expressions, ordinary division
    /// for floating-point values.
    Div,
    /// Modulo.
    Mod,
    /// Less-than comparison.
    Lt,
    /// Less-or-equal comparison.
    Le,
    /// Greater-than comparison.
    Gt,
    /// Greater-or-equal comparison.
    Ge,
    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Ne,
    /// Logical and.
    And,
    /// Logical or.
    Or,
}

impl BinOp {
    /// Returns `true` for comparison / boolean operators.
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::And
                | BinOp::Or
        )
    }

    /// Returns `true` if the operator commutes (`x op y == y op x`).
    pub fn commutes(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::Eq | BinOp::Ne | BinOp::And | BinOp::Or
        )
    }

    /// Symbol used by the pretty printer.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// One dimension of a *window expression*: either a single point or a
/// half-open interval `[lo, hi)` of a buffer dimension.
///
/// Windows appear as arguments to instruction calls, e.g.
/// `mm512_loadu_ps(dst[0:16], src[i, 0:16])`.
#[derive(Clone, PartialEq, Debug)]
pub enum WAccess {
    /// A point access along this dimension (the dimension is dropped from
    /// the window's shape).
    Point(Expr),
    /// An interval access `lo .. hi` along this dimension.
    Interval(Expr, Expr),
}

/// An expression of the object language.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Integer literal (also used for index arithmetic).
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// A scalar variable, loop iterator, or size argument.
    Var(Sym),
    /// A read of a buffer element: `buf[idx...]`.
    Read {
        /// Buffer being read.
        buf: Sym,
        /// Index expression per dimension (empty for scalar buffers).
        idx: Vec<Expr>,
    },
    /// A window of a buffer, used as an argument to calls: `buf[lo:hi, p]`.
    Window {
        /// Buffer being windowed.
        buf: Sym,
        /// Per-dimension accesses.
        idx: Vec<WAccess>,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        arg: Box<Expr>,
    },
    /// `stride(buf, dim)` — the row stride of a buffer, used by accelerator
    /// configuration instructions.
    Stride {
        /// Buffer whose stride is queried.
        buf: Sym,
        /// Dimension index.
        dim: usize,
    },
    /// A read of an accelerator configuration-register field,
    /// e.g. `cfg.stride`.
    ReadConfig {
        /// Configuration struct name.
        config: Sym,
        /// Field name.
        field: String,
    },
}

impl Expr {
    /// Builds `lhs op rhs`.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Builds a comparison `lhs < rhs`.
    pub fn lt(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Lt, lhs, rhs)
    }

    /// Builds a comparison `lhs <= rhs`.
    pub fn le(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Le, lhs, rhs)
    }

    /// Builds an equality comparison `lhs == rhs`.
    pub fn eq_(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Eq, lhs, rhs)
    }

    /// Builds `lhs % rhs`.
    pub fn modulo(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mod, lhs, rhs)
    }

    /// Builds logical `lhs and rhs`.
    pub fn and(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::And, lhs, rhs)
    }

    /// Returns the integer value if this is an integer literal.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Expr::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the variable symbol if this is a bare variable reference.
    pub fn as_var(&self) -> Option<&Sym> {
        match self {
            Expr::Var(s) => Some(s),
            _ => None,
        }
    }

    /// Returns `true` if the expression syntactically mentions `sym`
    /// (as a variable, buffer, stride or config reference).
    pub fn mentions(&self, sym: &Sym) -> bool {
        match self {
            Expr::Int(_) | Expr::Float(_) | Expr::Bool(_) => false,
            Expr::Var(s) => s == sym,
            Expr::Read { buf, idx } => buf == sym || idx.iter().any(|e| e.mentions(sym)),
            Expr::Window { buf, idx } => {
                buf == sym
                    || idx.iter().any(|w| match w {
                        WAccess::Point(e) => e.mentions(sym),
                        WAccess::Interval(lo, hi) => lo.mentions(sym) || hi.mentions(sym),
                    })
            }
            Expr::Bin { lhs, rhs, .. } => lhs.mentions(sym) || rhs.mentions(sym),
            Expr::Un { arg, .. } => arg.mentions(sym),
            Expr::Stride { buf, .. } => buf == sym,
            Expr::ReadConfig { config, .. } => config == sym,
        }
    }

    /// Collects every buffer symbol read anywhere in this expression.
    pub fn buffers_read(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        self.collect_buffers(&mut out);
        out
    }

    fn collect_buffers(&self, out: &mut Vec<Sym>) {
        match self {
            Expr::Read { buf, idx } => {
                out.push(buf.clone());
                for e in idx {
                    e.collect_buffers(out);
                }
            }
            Expr::Window { buf, idx } => {
                out.push(buf.clone());
                for w in idx {
                    match w {
                        WAccess::Point(e) => e.collect_buffers(out),
                        WAccess::Interval(lo, hi) => {
                            lo.collect_buffers(out);
                            hi.collect_buffers(out);
                        }
                    }
                }
            }
            Expr::Bin { lhs, rhs, .. } => {
                lhs.collect_buffers(out);
                rhs.collect_buffers(out);
            }
            Expr::Un { arg, .. } => arg.collect_buffers(out),
            _ => {}
        }
    }
}

/// Shorthand for an integer literal expression.
///
/// ```
/// use exo_ir::ib;
/// assert_eq!(ib(3).as_int(), Some(3));
/// ```
pub fn ib(v: i64) -> Expr {
    Expr::Int(v)
}

/// Shorthand for a floating-point literal expression.
pub fn fb(v: f64) -> Expr {
    Expr::Float(v)
}

/// Shorthand for a variable reference expression.
///
/// ```
/// use exo_ir::{var, Sym};
/// assert_eq!(var("i").as_var(), Some(&Sym::new("i")));
/// ```
pub fn var(name: impl Into<Sym>) -> Expr {
    Expr::Var(name.into())
}

/// Shorthand for a buffer read expression `buf[idx...]`.
pub fn read(buf: impl Into<Sym>, idx: Vec<Expr>) -> Expr {
    Expr::Read {
        buf: buf.into(),
        idx,
    }
}

impl ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, rhs)
    }
}

impl ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, rhs)
    }
}

impl ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, rhs)
    }
}

impl ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Div, self, rhs)
    }
}

impl ops::Rem for Expr {
    type Output = Expr;
    fn rem(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mod, self, rhs)
    }
}

impl ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Un {
            op: UnOp::Neg,
            arg: Box::new(self),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(v) => write!(f, "{v}"),
            Expr::Float(v) => f.write_str(&format_float(*v)),
            Expr::Bool(v) => write!(f, "{}", if *v { "True" } else { "False" }),
            Expr::Var(s) => write!(f, "{s}"),
            Expr::Read { buf, idx } => {
                if idx.is_empty() {
                    write!(f, "{buf}")
                } else {
                    let parts: Vec<String> = idx.iter().map(|e| e.to_string()).collect();
                    write!(f, "{buf}[{}]", parts.join(", "))
                }
            }
            Expr::Window { buf, idx } => {
                let parts: Vec<String> = idx
                    .iter()
                    .map(|w| match w {
                        WAccess::Point(e) => e.to_string(),
                        WAccess::Interval(lo, hi) => format!("{lo}:{hi}"),
                    })
                    .collect();
                write!(f, "{buf}[{}]", parts.join(", "))
            }
            Expr::Bin { op, lhs, rhs } => {
                let p = prec(*op);
                let lhs_s = if child_prec(lhs).map(|cp| cp < p).unwrap_or(false) {
                    format!("({lhs})")
                } else {
                    lhs.to_string()
                };
                let rhs_s = if child_prec(rhs)
                    .map(|cp| cp < p || (cp == p && !op.commutes()))
                    .unwrap_or(false)
                {
                    format!("({rhs})")
                } else {
                    rhs.to_string()
                };
                write!(f, "{lhs_s} {} {rhs_s}", op.symbol())
            }
            Expr::Un { op, arg } => match op {
                UnOp::Neg => write!(f, "-{}", paren(arg)),
                UnOp::Not => write!(f, "not {}", paren(arg)),
            },
            Expr::Stride { buf, dim } => write!(f, "stride({buf}, {dim})"),
            Expr::ReadConfig { config, field } => write!(f, "{config}.{field}"),
        }
    }
}

/// Renders a float literal so it round-trips and stays recognizable as a
/// float: Rust's shortest round-trip representation, with `.0` appended
/// when it would otherwise read as an integer (`1` → `1.0`), and the
/// non-finite values spelled `inf` / `-inf` / `nan` (never Rust's `NaN`),
/// which backends translate to their own non-finite spellings (the C
/// emitter uses `INFINITY` / `NAN` from `<math.h>`).
pub fn format_float(v: f64) -> String {
    if v.is_nan() {
        return "nan".to_string();
    }
    if v.is_infinite() {
        return if v > 0.0 { "inf" } else { "-inf" }.to_string();
    }
    // Rust's plain `{}` never uses scientific notation, so extreme
    // magnitudes would print as hundreds of digits; switch to `{:e}`
    // (also shortest-round-trip) outside a sane fixed-notation range.
    let s = if v != 0.0 && !(1e-4..1e16).contains(&v.abs()) {
        format!("{v:e}")
    } else {
        format!("{v}")
    };
    if s.bytes().all(|b| b.is_ascii_digit() || b == b'-') {
        format!("{s}.0")
    } else {
        s
    }
}

fn paren(e: &Expr) -> String {
    match e {
        Expr::Bin { .. } => format!("({e})"),
        _ => e.to_string(),
    }
}

/// Operator precedence for the pretty printer (higher binds tighter).
fn prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div | BinOp::Mod => 5,
    }
}

fn child_prec(e: &Expr) -> Option<u8> {
    match e {
        Expr::Bin { op, .. } => Some(prec(*op)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_overloads_build_binops() {
        let e = var("i") * ib(8) + var("j");
        // The lhs of the addition must itself be the multiplication;
        // asserted without panicking on the unexpected shapes so the
        // failure message always names the whole expression.
        assert!(
            matches!(
                &e,
                Expr::Bin {
                    op: BinOp::Add,
                    lhs,
                    ..
                } if matches!(lhs.as_ref(), Expr::Bin { op: BinOp::Mul, .. })
            ),
            "operator overloads built an unexpected shape: {e:?}"
        );
    }

    #[test]
    fn rewriting_tolerates_every_lhs_shape() {
        // Expression rewriting (substitution/renaming) must be total over
        // the `Expr` grammar: no lhs shape may panic, including windows,
        // strides and config reads appearing under binary operators.
        use crate::visit::{rename_expr, substitute_expr};
        let shapes: Vec<Expr> = vec![
            ib(1),
            fb(0.5),
            Expr::Bool(true),
            var("i"),
            read("A", vec![var("i")]),
            Expr::Window {
                buf: Sym::new("A"),
                idx: vec![WAccess::Interval(var("i"), var("i") + ib(8))],
            },
            Expr::Stride {
                buf: Sym::new("A"),
                dim: 0,
            },
            Expr::ReadConfig {
                config: Sym::new("cfg"),
                field: "stride".into(),
            },
            -var("i"),
        ];
        for lhs in shapes {
            let e = Expr::bin(BinOp::Add, lhs.clone(), var("i"));
            let s = substitute_expr(e.clone(), &Sym::new("i"), &ib(3));
            // Every occurrence of `i` must be substituted, in the rhs and
            // inside whatever shape the lhs has.
            assert!(!s.mentions(&Sym::new("i")), "`i` left behind in {s:?}");
            if let Expr::Bin { rhs, .. } = &s {
                assert_eq!(rhs.as_ref(), &ib(3), "rhs not substituted for {lhs:?}");
            }
            let r = rename_expr(e, &Sym::new("A"), &Sym::new("B"));
            assert!(
                !r.mentions(&Sym::new("A")),
                "rename left `A` behind in {r:?}"
            );
        }
    }

    #[test]
    fn display_matches_exo_syntax() {
        let e = read("y", vec![var("i")]);
        assert_eq!(e.to_string(), "y[i]");
        let e2 = var("a") * read("x", vec![ib(8) * var("io") + var("ii")]);
        assert_eq!(e2.to_string(), "a * x[8 * io + ii]");
        let w = Expr::Window {
            buf: Sym::new("A"),
            idx: vec![WAccess::Point(var("i")), WAccess::Interval(ib(0), ib(16))],
        };
        assert_eq!(w.to_string(), "A[i, 0:16]");
    }

    #[test]
    fn mentions_descends_into_subtrees() {
        let e = read("A", vec![var("i"), var("j") + ib(1)]);
        assert!(e.mentions(&Sym::new("j")));
        assert!(e.mentions(&Sym::new("A")));
        assert!(!e.mentions(&Sym::new("k")));
    }

    #[test]
    fn buffers_read_collects_nested() {
        let e = read("A", vec![var("i")]) * read("x", vec![var("j")]) + var("c");
        let bufs = e.buffers_read();
        assert!(bufs.contains(&Sym::new("A")));
        assert!(bufs.contains(&Sym::new("x")));
        assert_eq!(bufs.len(), 2);
    }

    #[test]
    fn commutes_and_predicates() {
        assert!(BinOp::Add.commutes());
        assert!(BinOp::Mul.commutes());
        assert!(!BinOp::Sub.commutes());
        assert!(BinOp::Lt.is_predicate());
        assert!(!BinOp::Add.is_predicate());
    }

    #[test]
    fn neg_display() {
        let e = -var("x");
        assert_eq!(e.to_string(), "-x");
    }

    #[test]
    fn float_literals_round_trip_and_stay_floats() {
        // Whole values must keep a decimal point so they cannot be
        // re-read (by a human or a C compiler) as integer literals.
        assert_eq!(fb(1.0).to_string(), "1.0");
        assert_eq!(fb(-2.0).to_string(), "-2.0");
        assert_eq!(fb(0.0).to_string(), "0.0");
        // Shortest representation round-trips exactly.
        for v in [
            0.1,
            1.0 / 3.0,
            -123456.75,
            1e300,
            5e-324,
            f64::MAX,
            f64::MIN_POSITIVE,
        ] {
            let s = format_float(v);
            assert_eq!(s.parse::<f64>().unwrap(), v, "no round-trip for {s}");
        }
        // Scientific notation is already unambiguous; no `.0` appended.
        assert_eq!(format_float(1e300), "1e300");
    }

    #[test]
    fn non_finite_floats_have_stable_lowercase_spellings() {
        assert_eq!(fb(f64::INFINITY).to_string(), "inf");
        assert_eq!(fb(f64::NEG_INFINITY).to_string(), "-inf");
        assert_eq!(fb(f64::NAN).to_string(), "nan");
    }
}
