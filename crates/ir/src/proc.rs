//! Procedures: the top-level unit of the object language.

use crate::expr::Expr;
use crate::stmt::Block;
use crate::sym::Sym;
use crate::types::{DataType, Mem};

/// The kind of a procedure argument.
#[derive(Clone, PartialEq, Debug)]
pub enum ArgKind {
    /// A `size` argument: a positive integer known at call time, usable in
    /// dimension expressions and assertions.
    Size,
    /// A scalar value argument.
    Scalar {
        /// Element type.
        ty: DataType,
    },
    /// A tensor (buffer) argument.
    Tensor {
        /// Element type.
        ty: DataType,
        /// Dimension sizes; may refer to size arguments.
        dims: Vec<Expr>,
        /// Memory space the buffer lives in.
        mem: Mem,
        /// Whether the argument is a *window* (`[f32][M, N]` in Exo syntax):
        /// a strided view rather than a dense buffer.
        window: bool,
    },
}

/// A single procedure argument.
#[derive(Clone, PartialEq, Debug)]
pub struct ProcArg {
    /// Argument name.
    pub name: Sym,
    /// Argument kind.
    pub kind: ArgKind,
}

/// Metadata attached to *instruction procedures*: procedures whose body
/// gives the semantics of a hardware instruction and whose calls are
/// emitted verbatim by the backend.
///
/// The cost model in `exo-machine` uses `cost_class` to charge cycles, and
/// `replace` (in `exo-core`) unifies statements against the instruction's
/// body to substitute calls for loop nests.
#[derive(Clone, PartialEq, Debug)]
pub struct InstrInfo {
    /// Cost-model class, e.g. `"avx512_fma"`, `"gemmini_ld_block"`.
    pub cost_class: String,
    /// C-like template emitted by the (textual) code generator; purely
    /// informational in this reproduction.
    pub c_template: String,
}

/// A procedure of the object language.
///
/// A procedure has a name, typed arguments, a list of assertion
/// preconditions (available to the scheduling-time analysis), and a body.
/// Instruction procedures additionally carry [`InstrInfo`].
#[derive(Clone, PartialEq, Debug)]
pub struct Proc {
    name: String,
    args: Vec<ProcArg>,
    preds: Vec<Expr>,
    body: Block,
    instr: Option<InstrInfo>,
}

impl Proc {
    /// Creates a procedure from parts. Most users construct procedures via
    /// [`crate::ProcBuilder`] instead.
    pub fn new(name: impl Into<String>, args: Vec<ProcArg>, preds: Vec<Expr>, body: Block) -> Self {
        Proc {
            name: name.into(),
            args,
            preds,
            body,
            instr: None,
        }
    }

    /// Name of the procedure.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the procedure (the `rename` scheduling operator).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The procedure's arguments.
    pub fn args(&self) -> &[ProcArg] {
        &self.args
    }

    /// Mutable access to the arguments (used by `set_memory` /
    /// `set_precision` when they target arguments).
    pub fn args_mut(&mut self) -> &mut Vec<ProcArg> {
        &mut self.args
    }

    /// Looks up an argument by name.
    pub fn arg(&self, name: &str) -> Option<&ProcArg> {
        self.args.iter().find(|a| a.name == *name)
    }

    /// The assertion preconditions (`assert M % 8 == 0`, ...).
    pub fn preds(&self) -> &[Expr] {
        &self.preds
    }

    /// Adds an assertion precondition, returning the new procedure
    /// (the `add_assertion` operator from the paper's Appendix C).
    pub fn add_assertion(&self, pred: Expr) -> Proc {
        let mut p = self.clone();
        p.preds.push(pred);
        p
    }

    /// The procedure body.
    pub fn body(&self) -> &Block {
        &self.body
    }

    /// Mutable access to the body (used by the editing layer).
    pub fn body_mut(&mut self) -> &mut Block {
        &mut self.body
    }

    /// Replaces the body wholesale.
    pub fn with_body(mut self, body: Block) -> Self {
        self.body = body;
        self
    }

    /// Instruction metadata, if this is an instruction procedure.
    pub fn instr(&self) -> Option<&InstrInfo> {
        self.instr.as_ref()
    }

    /// Marks this procedure as an instruction procedure.
    pub fn with_instr(mut self, info: InstrInfo) -> Self {
        self.instr = Some(info);
        self
    }

    /// Returns `true` if this is an instruction procedure.
    pub fn is_instr(&self) -> bool {
        self.instr.is_some()
    }

    /// The element type of a tensor or scalar argument, if present.
    pub fn arg_type(&self, name: &str) -> Option<DataType> {
        self.arg(name).map(|a| match &a.kind {
            ArgKind::Scalar { ty } => *ty,
            ArgKind::Tensor { ty, .. } => *ty,
            ArgKind::Size => DataType::Index,
        })
    }

    /// The memory space of a tensor argument, if present.
    pub fn arg_mem(&self, name: &str) -> Option<&Mem> {
        self.arg(name).and_then(|a| match &a.kind {
            ArgKind::Tensor { mem, .. } => Some(mem),
            _ => None,
        })
    }

    /// Names of all size arguments.
    pub fn size_args(&self) -> Vec<Sym> {
        self.args
            .iter()
            .filter(|a| matches!(a.kind, ArgKind::Size))
            .map(|a| a.name.clone())
            .collect()
    }

    /// Total number of statements in the body, counted recursively. Used by
    /// the evaluation's complexity metrics.
    pub fn stmt_count(&self) -> usize {
        self.body.count_recursive()
    }

    /// Number of *binding sites* in the procedure: arguments, allocations,
    /// loop iterators and window aliases, in stable pre-order.
    ///
    /// This is the exact number of environment slots a single activation
    /// of the procedure needs, and is the contract the interpreter's
    /// lowering pass relies on: `exo_interp::lower` assigns one dense
    /// frame slot per binding site in this same pre-order.
    pub fn binding_site_count(&self) -> usize {
        let mut n = self.args.len();
        for stmt in self.body.iter() {
            crate::visit::for_each_stmt(stmt, &mut |s| {
                if matches!(
                    s,
                    crate::stmt::Stmt::Alloc { .. }
                        | crate::stmt::Stmt::For { .. }
                        | crate::stmt::Stmt::WindowStmt { .. }
                ) {
                    n += 1;
                }
            });
        }
        n
    }

    /// Returns a symbol `{base}_{n}` that does not occur anywhere in this
    /// procedure, choosing the smallest such `n ≥ 0`.
    ///
    /// Unlike [`Sym::fresh`], which draws suffixes from a process-global
    /// counter (so generated names depend on everything else the process
    /// has scheduled), this is a pure function of the procedure: the same
    /// procedure always yields the same fresh name. Scheduling libraries
    /// use it (via `ProcHandle::fresh_name` in `exo-cursors`) so golden
    /// pretty-print and golden `.c` files are independent of test order
    /// and of how many schedules ran earlier in the process.
    ///
    /// Callers that mint several names before inserting any of them must
    /// use distinct `base`s (the scheduling libraries do), since the
    /// procedure cannot know about names not yet spliced into it.
    pub fn fresh_sym(&self, base: &str) -> Sym {
        let used = crate::visit::collect_sym_names(self);
        let mut n: u64 = 0;
        loop {
            let candidate = format!("{base}_{n}");
            if !used.contains(&candidate) {
                return Sym::new(candidate);
            }
            n += 1;
        }
    }

    /// Partially evaluates size arguments to constants, returning a new
    /// procedure with those arguments removed and every use replaced by the
    /// constant (the paper's `p.partial_eval(M, N)`).
    ///
    /// `bindings` maps argument names to constant values, in any order.
    /// Unknown names are ignored.
    pub fn partial_eval(&self, bindings: &[(&str, i64)]) -> Proc {
        use crate::visit::substitute_var;
        let mut p = self.clone();
        for (name, value) in bindings {
            let sym = Sym::new(*name);
            p.args
                .retain(|a| a.name != sym || !matches!(a.kind, ArgKind::Size));
            let val = Expr::Int(*value);
            // Substitute in argument dimensions.
            for arg in &mut p.args {
                if let ArgKind::Tensor { dims, .. } = &mut arg.kind {
                    for d in dims {
                        *d = substitute_expr_helper(d, &sym, &val);
                    }
                }
            }
            for pred in &mut p.preds {
                *pred = substitute_expr_helper(pred, &sym, &val);
            }
            let body = std::mem::take(&mut p.body);
            p.body = body
                .into_stmts()
                .into_iter()
                .map(|s| substitute_var(s, &sym, &val))
                .collect();
        }
        p
    }
}

fn substitute_expr_helper(e: &Expr, sym: &Sym, val: &Expr) -> Expr {
    crate::visit::substitute_expr(e.clone(), sym, val)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcBuilder;
    use crate::expr::{ib, var, BinOp};

    fn gemv() -> Proc {
        ProcBuilder::new("gemv")
            .size_arg("M")
            .size_arg("N")
            .tensor_arg("A", DataType::F32, vec![var("M"), var("N")], Mem::Dram)
            .tensor_arg("x", DataType::F32, vec![var("N")], Mem::Dram)
            .tensor_arg("y", DataType::F32, vec![var("M")], Mem::Dram)
            .assert_(Expr::eq_(Expr::modulo(var("M"), ib(8)), ib(0)))
            .for_("i", ib(0), var("M"), |b| {
                b.for_("j", ib(0), var("N"), |b| {
                    let rhs = crate::expr::read("A", vec![var("i"), var("j")])
                        * crate::expr::read("x", vec![var("j")]);
                    b.reduce("y", vec![var("i")], rhs);
                });
            })
            .build()
    }

    #[test]
    fn accessors() {
        let p = gemv();
        assert_eq!(p.name(), "gemv");
        assert_eq!(p.args().len(), 5);
        assert_eq!(p.size_args(), vec![Sym::new("M"), Sym::new("N")]);
        assert_eq!(p.arg_type("A"), Some(DataType::F32));
        assert_eq!(p.arg_mem("A"), Some(&Mem::Dram));
        assert_eq!(p.preds().len(), 1);
        assert_eq!(p.stmt_count(), 3);
        assert!(!p.is_instr());
    }

    #[test]
    fn binding_sites_count_args_loops_allocs() {
        let p = gemv();
        // 5 arguments + 2 loop iterators.
        assert_eq!(p.binding_site_count(), 7);
        let p = ProcBuilder::new("p")
            .tensor_arg("x", DataType::F32, vec![ib(4)], Mem::Dram)
            .for_("i", ib(0), ib(4), |b| {
                b.alloc("t", DataType::F32, vec![], Mem::Dram);
                b.assign("t", vec![], crate::expr::fb(0.0));
            })
            .build();
        // x + i + t.
        assert_eq!(p.binding_site_count(), 3);
    }

    #[test]
    fn rename_and_assertion() {
        let p = gemv().with_name("gemv2");
        assert_eq!(p.name(), "gemv2");
        let p2 = p.add_assertion(Expr::bin(BinOp::Ge, var("N"), ib(8)));
        assert_eq!(p2.preds().len(), 2);
    }

    #[test]
    fn partial_eval_removes_size_args() {
        let p = gemv().partial_eval(&[("M", 64), ("N", 32)]);
        assert_eq!(p.size_args().len(), 0);
        assert_eq!(p.args().len(), 3);
        // The loop bound should now be a literal.
        let s = format!("{p}");
        assert!(s.contains("seq(0, 64)"), "{s}");
        assert!(s.contains("seq(0, 32)"), "{s}");
    }

    #[test]
    fn fresh_sym_is_deterministic_and_collision_free() {
        let p = gemv();
        // Same proc, same answer — independent of any global counter state.
        Sym::fresh("noise");
        Sym::fresh("noise");
        assert_eq!(p.fresh_sym("tmp"), Sym::new("tmp_0"));
        assert_eq!(p.fresh_sym("tmp"), Sym::new("tmp_0"));
        // Occupied suffixes are skipped.
        let p2 = ProcBuilder::new("p")
            .tensor_arg("tmp_0", DataType::F32, vec![ib(4)], Mem::Dram)
            .for_("tmp_1", ib(0), ib(4), |b| {
                b.assign("tmp_0", vec![var("tmp_1")], crate::expr::fb(0.0));
            })
            .build();
        assert_eq!(p2.fresh_sym("tmp"), Sym::new("tmp_2"));
        // Existing loop iterators and buffer mentions all count as used.
        assert_eq!(p.fresh_sym("i"), Sym::new("i_0"));
    }

    #[test]
    fn instr_marker() {
        let p = Proc::new("mm512_loadu_ps", vec![], vec![], Block::new()).with_instr(InstrInfo {
            cost_class: "avx512_load".into(),
            c_template: "_mm512_loadu_ps(...)".into(),
        });
        assert!(p.is_instr());
        assert_eq!(p.instr().unwrap().cost_class, "avx512_load");
    }
}
