//! Retained-memory estimation and sharing control for procedures.
//!
//! [`Block`]s are structurally shared across procedure versions, so the
//! memory retained by a provenance chain of versions is *not* the sum of
//! each version's standalone size — shared subtrees are stored once. The
//! estimator here walks a procedure and charges each distinct block
//! storage exactly once (tracked by [`Block::storage_id`] in a caller-owned
//! seen-set, so one set can span a whole version chain).
//!
//! [`deep_unshare`] is the inverse knob: it rebuilds every block with
//! fresh, unshared storage. The deep-clone reference implementation in
//! `exo-cursors` uses it to reproduce the pre-sharing cost model
//! (O(|proc|) per edit, one full AST retained per version) for
//! differential testing and benchmarking.

use crate::expr::{Expr, WAccess};
use crate::proc::{ArgKind, Proc, ProcArg};
use crate::stmt::{Block, Stmt};
use crate::sym::Sym;
use std::collections::HashSet;
use std::mem::size_of;

fn sym_bytes(s: &Sym) -> usize {
    size_of::<Sym>() + s.name().len()
}

fn expr_heap_bytes(e: &Expr) -> usize {
    match e {
        Expr::Int(_) | Expr::Float(_) | Expr::Bool(_) => 0,
        Expr::Var(s) | Expr::Stride { buf: s, .. } => s.name().len(),
        Expr::Read { buf, idx } => buf.name().len() + exprs_bytes(idx),
        Expr::Window { buf, idx } => {
            buf.name().len()
                + idx.len() * size_of::<WAccess>()
                + idx
                    .iter()
                    .map(|w| match w {
                        WAccess::Point(e) => expr_heap_bytes(e),
                        WAccess::Interval(lo, hi) => expr_heap_bytes(lo) + expr_heap_bytes(hi),
                    })
                    .sum::<usize>()
        }
        Expr::Bin { lhs, rhs, .. } => {
            2 * size_of::<Expr>() + expr_heap_bytes(lhs) + expr_heap_bytes(rhs)
        }
        Expr::Un { arg, .. } => size_of::<Expr>() + expr_heap_bytes(arg),
        Expr::ReadConfig { config, field } => config.name().len() + field.len(),
    }
}

fn exprs_bytes(exprs: &[Expr]) -> usize {
    std::mem::size_of_val(exprs) + exprs.iter().map(expr_heap_bytes).sum::<usize>()
}

fn stmt_heap_bytes(s: &Stmt, seen: &mut HashSet<usize>) -> usize {
    match s {
        Stmt::Assign { buf, idx, rhs } | Stmt::Reduce { buf, idx, rhs } => {
            buf.name().len() + exprs_bytes(idx) + expr_heap_bytes(rhs)
        }
        Stmt::Alloc { name, dims, .. } => name.name().len() + exprs_bytes(dims),
        Stmt::For {
            iter, lo, hi, body, ..
        } => {
            iter.name().len() + expr_heap_bytes(lo) + expr_heap_bytes(hi) + block_bytes(body, seen)
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => expr_heap_bytes(cond) + block_bytes(then_body, seen) + block_bytes(else_body, seen),
        Stmt::Call { proc, args } => proc.len() + exprs_bytes(args),
        Stmt::Pass => 0,
        Stmt::WriteConfig {
            config,
            field,
            value,
        } => config.name().len() + field.len() + expr_heap_bytes(value),
        Stmt::WindowStmt { name, rhs } => name.name().len() + expr_heap_bytes(rhs),
    }
}

/// Estimated heap bytes retained by a block, charging storage shared with
/// an already-seen block zero bytes. `seen` is caller-owned so one set can
/// deduplicate across many procedures (e.g. a whole provenance chain).
pub fn block_bytes(block: &Block, seen: &mut HashSet<usize>) -> usize {
    if !seen.insert(block.storage_id()) {
        return 0;
    }
    block.len() * size_of::<Stmt>()
        + block
            .iter()
            .map(|s| stmt_heap_bytes(s, seen))
            .sum::<usize>()
}

fn arg_bytes(arg: &ProcArg) -> usize {
    sym_bytes(&arg.name)
        + size_of::<ArgKind>()
        + match &arg.kind {
            ArgKind::Tensor { dims, .. } => exprs_bytes(dims),
            ArgKind::Size | ArgKind::Scalar { .. } => 0,
        }
}

/// Estimated heap bytes retained by a procedure, deduplicating blocks
/// whose storage ids are already in `seen`.
///
/// Call this once per version of a provenance chain with a single shared
/// `seen` set to measure the bytes the whole chain actually retains.
pub fn proc_retained_bytes(proc: &Proc, seen: &mut HashSet<usize>) -> usize {
    proc.name().len()
        + proc.args().iter().map(arg_bytes).sum::<usize>()
        + exprs_bytes(proc.preds())
        + block_bytes(proc.body(), seen)
}

fn unshare_block(block: &Block) -> Block {
    block.iter().map(unshare_stmt).collect()
}

fn unshare_stmt(s: &Stmt) -> Stmt {
    match s {
        Stmt::For {
            iter,
            lo,
            hi,
            body,
            parallel,
        } => Stmt::For {
            iter: iter.clone(),
            lo: lo.clone(),
            hi: hi.clone(),
            body: unshare_block(body),
            parallel: *parallel,
        },
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => Stmt::If {
            cond: cond.clone(),
            then_body: unshare_block(then_body),
            else_body: unshare_block(else_body),
        },
        other => other.clone(),
    }
}

/// Returns a structurally-equal copy of the procedure in which every block
/// has fresh, unshared storage (a true deep clone, as if structural
/// sharing did not exist).
pub fn deep_unshare(proc: &Proc) -> Proc {
    proc.clone().with_body(unshare_block(proc.body()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcBuilder;
    use crate::expr::{ib, read, var};
    use crate::types::{DataType, Mem};

    fn nested() -> Proc {
        ProcBuilder::new("p")
            .size_arg("n")
            .tensor_arg("y", DataType::F32, vec![var("n")], Mem::Dram)
            .for_("i", ib(0), var("n"), |b| {
                b.for_("j", ib(0), ib(4), |b| {
                    b.reduce("y", vec![var("i")], read("y", vec![var("j")]));
                });
            })
            .build()
    }

    #[test]
    fn clone_shares_storage_and_costs_nothing_extra() {
        let p = nested();
        let q = p.clone();
        assert!(p.body().shares_storage_with(q.body()));
        let mut seen = HashSet::new();
        let first = proc_retained_bytes(&p, &mut seen);
        let second = proc_retained_bytes(&q, &mut seen);
        assert!(first > 0);
        // The clone's body is fully shared; only name/args/preds re-charge.
        assert!(second < first / 2, "{second} vs {first}");
    }

    #[test]
    fn deep_unshare_breaks_sharing_but_preserves_equality() {
        let p = nested();
        let q = deep_unshare(&p);
        assert_eq!(p, q);
        assert_eq!(format!("{p}"), format!("{q}"));
        assert!(!p.body().shares_storage_with(q.body()));
        let mut seen = HashSet::new();
        let first = proc_retained_bytes(&p, &mut seen);
        let second = proc_retained_bytes(&q, &mut seen);
        // Unshared copy re-charges its whole body.
        assert!(second > first / 2, "{second} vs {first}");
    }
}
