//! Scalar data types and memory spaces.

use std::fmt;

/// Numeric precision / scalar type of a buffer element or scalar variable.
///
/// These mirror the precisions used in the paper's evaluation: `f32`/`f64`
/// for BLAS kernels, `i8`/`i32` for the Gemmini quantized matmul, and `bool`
/// / `index` for control values.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum DataType {
    /// 32-bit IEEE-754 floating point.
    F32,
    /// 64-bit IEEE-754 floating point.
    F64,
    /// 8-bit signed integer (Gemmini quantized inputs).
    I8,
    /// 32-bit signed integer (Gemmini accumulator values).
    I32,
    /// Boolean.
    Bool,
    /// Loop-index / size values (non-negative integers).
    Index,
}

impl DataType {
    /// Size of one element in bytes, as used by the cache model.
    pub fn size_bytes(self) -> u64 {
        match self {
            DataType::F32 | DataType::I32 => 4,
            DataType::F64 => 8,
            DataType::I8 | DataType::Bool => 1,
            DataType::Index => 8,
        }
    }

    /// Whether this is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, DataType::F32 | DataType::F64)
    }

    /// Whether this is an integer type (including `index`).
    pub fn is_int(self) -> bool {
        matches!(self, DataType::I8 | DataType::I32 | DataType::Index)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::F32 => "f32",
            DataType::F64 => "f64",
            DataType::I8 => "i8",
            DataType::I32 => "i32",
            DataType::Bool => "bool",
            DataType::Index => "index",
        };
        f.write_str(s)
    }
}

/// A memory space annotation (`@DRAM`, `@VEC_AVX2`, `@GEMM_SCRATCH`, ...).
///
/// Memory spaces are user-extensible in Exo; the enum carries the spaces
/// used throughout the paper plus a [`Mem::Custom`] escape hatch. The
/// backend check `set_memory` verifies that buffer accesses obey the target
/// memory's constraints (see `exo-core`), and the cost simulator in
/// `exo-machine` assigns different access costs per space.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Mem {
    /// Main memory (the default space).
    Dram,
    /// Statically-allocated main memory (`DRAM_STATIC` in the paper's GEMM).
    DramStatic,
    /// Stack-allocated main memory (`DRAM_STACK` in the blur schedule).
    DramStack,
    /// Generic vector-register space (used mid-vectorization before a
    /// concrete ISA is chosen).
    Vec,
    /// AVX2 vector registers (8 × f32 / 4 × f64 lanes).
    VecAvx2,
    /// AVX512 vector registers (16 × f32 / 8 × f64 lanes).
    VecAvx512,
    /// Gemmini software-managed scratchpad (256 KiB in the paper).
    GemmScratch,
    /// Gemmini accumulator memory (16 KiB in the paper).
    GemmAccum,
    /// A user-defined memory space.
    Custom(String),
}

impl Mem {
    /// Returns `true` for vector-register spaces.
    pub fn is_vector(&self) -> bool {
        matches!(self, Mem::Vec | Mem::VecAvx2 | Mem::VecAvx512)
    }

    /// Returns `true` for Gemmini on-accelerator memories.
    pub fn is_accelerator(&self) -> bool {
        matches!(self, Mem::GemmScratch | Mem::GemmAccum)
    }

    /// Returns `true` for plain host memory spaces.
    pub fn is_dram(&self) -> bool {
        matches!(self, Mem::Dram | Mem::DramStatic | Mem::DramStack)
    }

    /// Number of scalar lanes a register of this space holds for `dt`,
    /// or `None` for non-vector spaces.
    pub fn lanes(&self, dt: DataType) -> Option<u64> {
        let bytes = match self {
            Mem::VecAvx2 => 32,
            Mem::VecAvx512 => 64,
            Mem::Vec => 32,
            _ => return None,
        };
        Some(bytes / dt.size_bytes())
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Mem::Dram => "DRAM",
            Mem::DramStatic => "DRAM_STATIC",
            Mem::DramStack => "DRAM_STACK",
            Mem::Vec => "VEC",
            Mem::VecAvx2 => "VEC_AVX2",
            Mem::VecAvx512 => "VEC_AVX512",
            Mem::GemmScratch => "GEMM_SCRATCH",
            Mem::GemmAccum => "GEMM_ACCUM",
            Mem::Custom(name) => name,
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datatype_sizes() {
        assert_eq!(DataType::F32.size_bytes(), 4);
        assert_eq!(DataType::F64.size_bytes(), 8);
        assert_eq!(DataType::I8.size_bytes(), 1);
        assert_eq!(DataType::I32.size_bytes(), 4);
    }

    #[test]
    fn datatype_kind_predicates() {
        assert!(DataType::F32.is_float());
        assert!(!DataType::F32.is_int());
        assert!(DataType::I8.is_int());
        assert!(DataType::Index.is_int());
    }

    #[test]
    fn mem_lanes() {
        assert_eq!(Mem::VecAvx2.lanes(DataType::F32), Some(8));
        assert_eq!(Mem::VecAvx2.lanes(DataType::F64), Some(4));
        assert_eq!(Mem::VecAvx512.lanes(DataType::F32), Some(16));
        assert_eq!(Mem::VecAvx512.lanes(DataType::F64), Some(8));
        assert_eq!(Mem::Dram.lanes(DataType::F32), None);
    }

    #[test]
    fn mem_predicates_and_display() {
        assert!(Mem::VecAvx512.is_vector());
        assert!(Mem::GemmScratch.is_accelerator());
        assert!(Mem::DramStack.is_dram());
        assert_eq!(Mem::GemmAccum.to_string(), "GEMM_ACCUM");
        assert_eq!(Mem::Custom("MYMEM".into()).to_string(), "MYMEM");
        assert_eq!(DataType::F64.to_string(), "f64");
    }
}
