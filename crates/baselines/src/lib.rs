//! # exo-baselines — comparison points for the evaluation
//!
//! The paper compares Exo 2 against vendor BLAS libraries (MKL, OpenBLAS,
//! BLIS), expert-written Halide schedules, and schedules written in the
//! original Exo. None of those artifacts can run on this reproduction's
//! simulated machine, so (per `DESIGN.md`) they are substituted with:
//!
//! * [`naive`] — the unscheduled scalar object code (a lower bound any
//!   library beats),
//! * [`VendorBaseline`] — a "vendor-class" implementation: the best
//!   schedule expressible in the IR plus a fixed per-call dispatch
//!   overhead modelling the library-call boundary that real BLAS
//!   libraries pay and that the paper's small-N ratios expose,
//! * [`exo1_axpy_schedule`] / [`exo1_gemv_schedule`] — "Exo 1 style"
//!   schedules: the same transformations spelled out as raw primitive
//!   calls with no library reuse, used for the lines-of-code and
//!   rewrite-count comparisons (Fig. 6c, Fig. 9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use exo_core::{
    bind_expr, divide_loop, expand_dim, fission, lift_alloc, replace_all, set_memory, simplify,
    Result, TailStrategy,
};
use exo_cursors::ProcHandle;
use exo_ir::{DataType, ExprStep, Proc};
use exo_machine::MachineModel;

/// The naive scalar reference: the kernel exactly as written.
pub fn naive(kernel: &Proc) -> ProcHandle {
    ProcHandle::new(kernel.clone())
}

/// A vendor-class baseline: an aggressively scheduled kernel plus the
/// per-call dispatch overhead (in cycles) that a pre-compiled library pays
/// at its API boundary. The paper's heatmaps divide vendor runtime by
/// Exo 2 runtime, so this overhead is what produces the >1 ratios at small
/// problem sizes (Figs. 8, 14-16).
#[derive(Clone, Debug)]
pub struct VendorBaseline {
    /// Name of the library being modelled (MKL / OpenBLAS / BLIS class).
    pub name: &'static str,
    /// Fixed per-call overhead in cycles.
    pub dispatch_overhead: u64,
}

impl VendorBaseline {
    /// The three vendor libraries the paper compares against. They share
    /// kernel quality and differ (slightly) in modelled call overhead.
    pub fn all() -> Vec<VendorBaseline> {
        vec![
            VendorBaseline {
                name: "MKL",
                dispatch_overhead: 120,
            },
            VendorBaseline {
                name: "OpenBLAS",
                dispatch_overhead: 180,
            },
            VendorBaseline {
                name: "BLIS",
                dispatch_overhead: 200,
            },
        ]
    }
}

/// An "Exo 1 style" schedule for `axpy`: the same vectorization the
/// `exo-lib` vectorizer performs, written out as raw primitive calls with
/// no reusable abstractions (what a user of plain Exo would write for each
/// kernel variant, one by one).
pub fn exo1_axpy_schedule(p: &ProcHandle, machine: &MachineModel) -> Result<ProcHandle> {
    let vw = machine.vec_width(DataType::F32);
    let p = divide_loop(p, "i", vw, ["io", "ii"], TailStrategy::Perfect)?;
    // Stage the two factors of the fused multiply-add by hand.
    let stmt = p.find("y += _")?;
    let lhs = p.cursor_at(exo_cursors::CursorPath::Node {
        stmt: stmt.path().stmt_path().unwrap().to_vec(),
        expr: vec![ExprStep::Rhs, ExprStep::BinLhs],
    });
    let p = bind_expr(&p, &lhs, "a_vec", DataType::F32)?;
    let stmt = p.find("y += _")?;
    let rhs = p.cursor_at(exo_cursors::CursorPath::Node {
        stmt: stmt.path().stmt_path().unwrap().to_vec(),
        expr: vec![ExprStep::Rhs, ExprStep::BinRhs],
    });
    let p = bind_expr(&p, &rhs, "x_vec", DataType::F32)?;
    // Expand, lift and place each temporary by hand.
    let mut p = p;
    for name in ["a_vec", "x_vec"] {
        p = expand_dim(
            &p,
            format!("{name}: _").as_str(),
            exo_ir::ib(vw),
            exo_ir::var("ii"),
        )?;
        p = lift_alloc(&p, format!("{name}: _").as_str(), 1)?;
        p = set_memory(&p, format!("{name}: _").as_str(), machine.mem_type())?;
    }
    // Fission and lower to instructions, again by hand.
    let gap = p
        .find("a_vec = _")?
        .after()
        .map_err(exo_core::SchedError::from)?;
    let p = fission(&p, &gap, 1)?;
    let gap = p
        .find("x_vec = _")?
        .after()
        .map_err(exo_core::SchedError::from)?;
    let p = fission(&p, &gap, 1)?;
    let p = replace_all(&p, &machine.instructions(DataType::F32))?;
    simplify(&p)
}

/// An "Exo 1 style" schedule for `gemv_n`: vectorize the inner loop with
/// explicit primitive calls (no `optimize_level_1` reuse).
pub fn exo1_gemv_schedule(p: &ProcHandle, machine: &MachineModel) -> Result<ProcHandle> {
    let vw = machine.vec_width(DataType::F32);
    let p = divide_loop(p, "j", vw, ["jo", "ji"], TailStrategy::Perfect)?;
    let stmt = p.find("y += _")?;
    let rhs = stmt.rhs().map_err(exo_core::SchedError::from)?;
    let p = bind_expr(&p, &rhs, "prod", DataType::F32)?;
    let mut p = expand_dim(&p, "prod: _", exo_ir::ib(vw), exo_ir::var("ji"))?;
    p = lift_alloc(&p, "prod: _", 1)?;
    p = set_memory(&p, "prod: _", machine.mem_type())?;
    let gap = p
        .find("prod = _")?
        .after()
        .map_err(exo_core::SchedError::from)?;
    let p = fission(&p, &gap, 1)?;
    let p = replace_all(&p, &machine.instructions(DataType::F32))?;
    simplify(&p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_interp::{ArgValue, Interpreter, NullMonitor, ProcRegistry};
    use exo_kernels::{axpy, gemv, Precision};

    #[test]
    fn exo1_axpy_matches_the_library_schedule_semantically() {
        let machine = MachineModel::avx2();
        let p = ProcHandle::new(axpy(Precision::Single));
        let raw = exo1_axpy_schedule(&p, &machine).unwrap();
        assert!(raw.to_string().contains("mm256_"), "{}", raw.to_string());
        let registry: ProcRegistry = machine.instructions(DataType::F32).into_iter().collect();
        let n = 32usize;
        let run = |proc: &Proc| {
            let mut interp = Interpreter::new(&registry);
            let (_, x) =
                ArgValue::from_vec((0..n).map(|v| v as f64).collect(), vec![n], DataType::F32);
            let (yb, y) = ArgValue::from_vec(vec![1.0; n], vec![n], DataType::F32);
            let (_, out) = ArgValue::zeros(vec![1], DataType::F32);
            interp
                .run(
                    proc,
                    vec![ArgValue::Int(n as i64), ArgValue::Float(2.0), x, y, out],
                    &mut NullMonitor,
                )
                .unwrap();
            let d = yb.borrow().data.clone();
            d
        };
        assert_eq!(run(p.proc()), run(raw.proc()));
    }

    #[test]
    fn exo1_gemv_schedule_builds() {
        let machine = MachineModel::avx2();
        let p = ProcHandle::new(gemv(Precision::Single, false));
        let raw = exo1_gemv_schedule(&p, &machine).unwrap();
        assert!(raw.to_string().contains("mm256_"), "{}", raw.to_string());
    }

    #[test]
    fn vendor_baselines_have_distinct_overheads() {
        let all = VendorBaseline::all();
        assert_eq!(all.len(), 3);
        assert!(all.iter().any(|v| v.name == "MKL"));
        assert!(all[0].dispatch_overhead < all[2].dispatch_overhead);
    }
}
