//! # exo-guard — supervised subprocess execution
//!
//! Every external process the toolchain runs — the system C compiler,
//! compiled differential-test binaries, timing drivers — is a fault
//! boundary: a miscompiled kernel can loop forever, a compiler can wedge
//! on a pathological translation unit, and a `Command::output()` call
//! with no timeout then hangs the calling thread (and under
//! `std::thread::scope`, the whole process) indefinitely.
//!
//! [`run_guarded`] is the single supervised runner the workspace uses
//! instead of bare `Command::output()`:
//!
//! * **hard wall-clock timeout** — the child is polled with
//!   `try_wait`; past the deadline it is killed, reaped, and the call
//!   returns [`GuardError::TimedOut`] with whatever output was captured;
//! * **bounded output capture** — stdout/stderr are drained on
//!   capture threads into buffers capped at
//!   [`GuardConfig::max_output_bytes`]; a runaway printer cannot exhaust
//!   memory, and the pipes keep draining so the child never blocks on a
//!   full pipe;
//! * **retry with exponential backoff** — *spawn* failures (transient
//!   EAGAIN-class errors) are retried up to
//!   [`GuardConfig::spawn_retries`] times with doubling sleeps; failures
//!   of the process itself (non-zero exit) are never retried, they are
//!   reported;
//! * **no unbounded joins** — capture results are received over
//!   channels with a bounded grace period, so even a grandchild that
//!   inherits the pipe and outlives the kill cannot hang the caller.
//!
//! The crate is deliberately free of external dependencies (its only
//! workspace dependency is the equally dependency-free `exo-obs`
//! tracing substrate) and panic-free on all library paths
//! (`scripts/check_no_panics.sh` enforces the latter).
//! `exo-serve` re-exports it as `exo_serve::proc_guard`; `exo-codegen`'s
//! differential harness and `exo-autotune`'s measurement workers consume
//! it directly.
//!
//! When tracing is enabled ([`exo_obs::enable`]), every supervised run
//! records a `guard:run` span with `guard:spawn` / `guard:wait` /
//! `guard:kill` child phases, plus `guard:retry` and `guard:timeout`
//! events — so a trace of a serve or difftest workload shows exactly
//! where subprocess wall-clock went.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::fmt;
use std::io::Read;
use std::process::{Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// How often the supervisor polls a running child for completion.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// How long to wait for the capture threads after the child has been
/// reaped. Normally the pipes close with the child and the receive is
/// immediate; a grandchild holding the pipe open makes the receive time
/// out and the capture is reported as truncated instead of blocking.
const CAPTURE_GRACE: Duration = Duration::from_secs(2);

/// Supervision policy for one subprocess invocation.
#[derive(Clone, Debug)]
pub struct GuardConfig {
    /// Hard wall-clock limit measured from (each) successful spawn; the
    /// child is killed when it is exceeded.
    pub timeout: Duration,
    /// Capture cap per stream; output beyond it is drained and dropped,
    /// and the stream is marked truncated.
    pub max_output_bytes: usize,
    /// How many times a *failed spawn* is retried (so up to
    /// `spawn_retries + 1` attempts in total).
    pub spawn_retries: u32,
    /// Sleep before the first spawn retry; doubles on every further
    /// retry.
    pub backoff_base: Duration,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            timeout: Duration::from_secs(120),
            max_output_bytes: 1 << 20,
            spawn_retries: 2,
            backoff_base: Duration::from_millis(50),
        }
    }
}

impl GuardConfig {
    /// The default policy with a different wall-clock limit.
    pub fn with_timeout(timeout: Duration) -> Self {
        GuardConfig {
            timeout,
            ..GuardConfig::default()
        }
    }

    /// Backoff before retry number `retry` (1-based): `backoff_base`
    /// doubled per retry, saturating.
    fn backoff_for(&self, retry: u32) -> Duration {
        self.backoff_base.saturating_mul(
            1u32.checked_shl(retry.saturating_sub(1))
                .unwrap_or(u32::MAX),
        )
    }
}

/// A completed (exited-by-itself) supervised invocation.
#[derive(Clone, Debug)]
pub struct GuardedOutput {
    /// Whether the child exited with status zero.
    pub success: bool,
    /// The exit code, when the platform reports one.
    pub code: Option<i32>,
    /// Captured stdout, capped at [`GuardConfig::max_output_bytes`].
    pub stdout: Vec<u8>,
    /// Captured stderr, capped at [`GuardConfig::max_output_bytes`].
    pub stderr: Vec<u8>,
    /// Whether stdout exceeded the cap (or its capture timed out).
    pub stdout_truncated: bool,
    /// Whether stderr exceeded the cap (or its capture timed out).
    pub stderr_truncated: bool,
    /// Spawn attempts used (1 unless spawn retries fired).
    pub attempts: u32,
    /// Wall-clock time from the last spawn to child exit.
    pub elapsed: Duration,
}

impl GuardedOutput {
    /// Captured stdout as (lossy) UTF-8.
    pub fn stdout_lossy(&self) -> String {
        String::from_utf8_lossy(&self.stdout).into_owned()
    }

    /// Captured stderr as (lossy) UTF-8.
    pub fn stderr_lossy(&self) -> String {
        String::from_utf8_lossy(&self.stderr).into_owned()
    }
}

/// Why a supervised invocation produced no [`GuardedOutput`].
#[derive(Clone, Debug)]
pub enum GuardError {
    /// The process could not be spawned, even after the configured
    /// retries.
    Spawn {
        /// Total spawn attempts made.
        attempts: u32,
        /// The last OS error.
        message: String,
    },
    /// The child exceeded the wall-clock limit and was killed.
    TimedOut {
        /// The limit that was exceeded.
        timeout: Duration,
        /// Stdout captured before the kill.
        stdout: Vec<u8>,
        /// Stderr captured before the kill.
        stderr: Vec<u8>,
    },
    /// The child's status could not be observed (`try_wait` failed).
    Wait {
        /// The OS error.
        message: String,
    },
}

impl fmt::Display for GuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardError::Spawn { attempts, message } => {
                write!(f, "spawn failed after {attempts} attempt(s): {message}")
            }
            GuardError::TimedOut { timeout, .. } => {
                write!(f, "killed after exceeding the {timeout:?} wall-clock limit")
            }
            GuardError::Wait { message } => write!(f, "cannot observe child status: {message}"),
        }
    }
}

impl std::error::Error for GuardError {}

/// Whether the error is the timeout kill (callers often degrade rather
/// than fail on this).
impl GuardError {
    /// True for [`GuardError::TimedOut`].
    pub fn is_timeout(&self) -> bool {
        matches!(self, GuardError::TimedOut { .. })
    }
}

/// Reads a stream to EOF, streaming capped chunks over `tx` as they
/// arrive. At most `cap` bytes are ever sent; the stream keeps being
/// drained past the cap so the child never blocks on a full pipe.
/// Streaming (rather than one send at EOF) means a kill-on-timeout still
/// recovers the partial output even when a grandchild keeps the pipe
/// open and EOF never comes.
fn drain(mut reader: impl Read, cap: usize, tx: &mpsc::Sender<(Vec<u8>, bool)>) {
    let mut sent = 0usize;
    let mut chunk = [0u8; 8192];
    loop {
        match reader.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                let take = n.min(cap.saturating_sub(sent));
                let truncated = take < n;
                if take > 0 || truncated {
                    if tx.send((chunk[..take].to_vec(), truncated)).is_err() {
                        break;
                    }
                    sent += take;
                }
            }
            // A read error (e.g. the pipe torn down mid-read after a
            // kill) ends the capture with what we have.
            Err(_) => break,
        }
    }
}

/// Spawns a capture thread for an optional stream and returns the
/// receiving end; `None` streams yield an immediately-closed channel
/// (empty capture).
fn spawn_capture(
    stream: Option<impl Read + Send + 'static>,
    cap: usize,
) -> mpsc::Receiver<(Vec<u8>, bool)> {
    let (tx, rx) = mpsc::channel();
    if let Some(reader) = stream {
        std::thread::spawn(move || drain(reader, cap, &tx));
    }
    rx
}

/// Why a capture stopped short of the stream's true end.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Truncation {
    /// The stream ended (EOF) within the cap: the capture is complete.
    None,
    /// The byte cap was hit; further output was drained and dropped.
    Cap,
    /// The capture grace period expired with the stream still open (a
    /// grandchild kept the pipe alive past the kill).
    Grace,
}

/// Accumulates a capture with a bounded grace period. A capture thread
/// still blocked mid-stream (a grandchild kept the pipe open) yields
/// whatever arrived so far, marked truncated, instead of blocking the
/// supervisor.
fn recv_capture(rx: &mpsc::Receiver<(Vec<u8>, bool)>) -> (Vec<u8>, Truncation) {
    let deadline = Instant::now() + CAPTURE_GRACE;
    let mut buf = Vec::new();
    let mut truncation = Truncation::None;
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(left) {
            Ok((bytes, capped)) => {
                buf.extend_from_slice(&bytes);
                if capped {
                    truncation = Truncation::Cap;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if truncation == Truncation::None {
                    truncation = Truncation::Grace;
                }
                break;
            }
        }
    }
    (buf, truncation)
}

/// Runs `cmd` under supervision: spawn (with retry/backoff on spawn
/// failure), capture bounded output, enforce the wall-clock limit, kill
/// and reap on overrun.
///
/// The command's stdin is closed; stdout/stderr are piped and captured.
/// `cmd` is taken by `&mut` because retrying re-spawns the same
/// `Command` value.
///
/// # Errors
/// [`GuardError::Spawn`] when the process never started,
/// [`GuardError::TimedOut`] when it was killed at the deadline (with the
/// partial capture), [`GuardError::Wait`] when its status could not be
/// observed.
pub fn run_guarded(cmd: &mut Command, cfg: &GuardConfig) -> Result<GuardedOutput, GuardError> {
    let _run = exo_obs::span!("guard:run", "{}", cmd.get_program().to_string_lossy());
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        cmd.stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        let spawned = {
            let _spawn = exo_obs::span!("guard:spawn");
            cmd.spawn()
        };
        let mut child = match spawned {
            Ok(child) => child,
            Err(e) => {
                if attempt > cfg.spawn_retries {
                    return Err(GuardError::Spawn {
                        attempts: attempt,
                        message: e.to_string(),
                    });
                }
                exo_obs::event("guard:retry", || {
                    format!("spawn attempt {attempt} failed: {e}")
                });
                std::thread::sleep(cfg.backoff_for(attempt));
                continue;
            }
        };
        let started = Instant::now();
        let out_rx = spawn_capture(child.stdout.take(), cfg.max_output_bytes);
        let err_rx = spawn_capture(child.stderr.take(), cfg.max_output_bytes);
        let deadline = started + cfg.timeout;
        let status = {
            let _wait = exo_obs::span!("guard:wait");
            loop {
                match child.try_wait() {
                    Ok(Some(status)) => break Some(status),
                    Ok(None) => {
                        if Instant::now() >= deadline {
                            exo_obs::event("guard:timeout", || {
                                format!("killed at the {:?} wall-clock limit", cfg.timeout)
                            });
                            let _kill = exo_obs::span!("guard:kill");
                            let _ = child.kill();
                            let _ = child.wait();
                            break None;
                        }
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(e) => {
                        let _ = child.kill();
                        let _ = child.wait();
                        return Err(GuardError::Wait {
                            message: e.to_string(),
                        });
                    }
                }
            }
        };
        let (stdout, stdout_trunc) = recv_capture(&out_rx);
        let (stderr, stderr_trunc) = recv_capture(&err_rx);
        return match status {
            Some(status) => Ok(GuardedOutput {
                success: status.success(),
                code: status.code(),
                stdout,
                stderr,
                stdout_truncated: stdout_trunc != Truncation::None,
                stderr_truncated: stderr_trunc != Truncation::None,
                attempts: attempt,
                elapsed: started.elapsed(),
            }),
            None => Err(GuardError::TimedOut {
                timeout: cfg.timeout,
                stdout: mark_truncated(stdout, stdout_trunc, cfg.max_output_bytes),
                stderr: mark_truncated(stderr, stderr_trunc, cfg.max_output_bytes),
            }),
        };
    }
}

/// Appends an explicit marker to a byte-capped capture. The partial
/// output embedded in [`GuardError::TimedOut`] has no `*_truncated`
/// flags alongside it (unlike [`GuardedOutput`]), so logs and traces
/// that quote it would otherwise be ambiguous about whether the stream
/// really produced more than what was kept. Grace-period truncation is
/// not marked: a timed-out capture is partial by definition, and the
/// error variant already says so.
fn mark_truncated(mut buf: Vec<u8>, truncation: Truncation, cap: usize) -> Vec<u8> {
    if truncation == Truncation::Cap {
        buf.extend_from_slice(format!("\n[truncated by exo-guard: limit {cap} bytes]").as_bytes());
    }
    buf
}

/// Renders a caught panic payload (from `std::panic::catch_unwind`) as a
/// message: the `&str` / `String` payloads real panics carry are shown
/// verbatim, anything else by type-erased placeholder.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(script: &str) -> Command {
        let mut cmd = Command::new("sh");
        cmd.arg("-c").arg(script);
        cmd
    }

    #[test]
    fn captures_output_of_a_successful_command() {
        let out = run_guarded(
            &mut sh("echo guarded; echo err >&2"),
            &GuardConfig::default(),
        )
        .expect("echo runs");
        assert!(out.success);
        assert_eq!(out.code, Some(0));
        assert_eq!(out.stdout_lossy(), "guarded\n");
        assert_eq!(out.stderr_lossy(), "err\n");
        assert!(!out.stdout_truncated);
        assert_eq!(out.attempts, 1);
    }

    #[test]
    fn preserves_nonzero_exit_codes_without_retrying() {
        let out = run_guarded(&mut sh("exit 3"), &GuardConfig::default()).expect("sh runs");
        assert!(!out.success);
        assert_eq!(out.code, Some(3));
        assert_eq!(out.attempts, 1, "process failures must not be retried");
    }

    #[test]
    fn kills_a_hanging_process_at_the_deadline() {
        let cfg = GuardConfig::with_timeout(Duration::from_millis(150));
        let t0 = Instant::now();
        let err = run_guarded(&mut sh("sleep 30"), &cfg).expect_err("must time out");
        assert!(err.is_timeout(), "{err}");
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "kill-on-timeout took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn timeout_returns_partial_capture() {
        let cfg = GuardConfig::with_timeout(Duration::from_millis(300));
        let err = run_guarded(&mut sh("echo early; sleep 30"), &cfg).expect_err("must time out");
        match err {
            GuardError::TimedOut { stdout, .. } => {
                assert_eq!(String::from_utf8_lossy(&stdout), "early\n");
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }

    #[test]
    fn bounds_output_capture() {
        let cfg = GuardConfig {
            max_output_bytes: 1024,
            ..GuardConfig::default()
        };
        // ~200KB of output; the child must still exit cleanly (the pipe
        // keeps draining) and the capture must stop at the cap.
        let out = run_guarded(
            &mut sh("i=0; while [ $i -lt 20000 ]; do echo 0123456789; i=$((i+1)); done"),
            &cfg,
        )
        .expect("printer runs");
        assert!(out.success);
        assert_eq!(out.stdout.len(), 1024);
        assert!(out.stdout_truncated);
    }

    #[test]
    fn timed_out_truncated_capture_is_marked() {
        let cfg = GuardConfig {
            timeout: Duration::from_millis(300),
            max_output_bytes: 64,
            ..GuardConfig::default()
        };
        // Exceed the capture cap, then hang past the wall-clock limit.
        let err = run_guarded(
            &mut sh("i=0; while [ $i -lt 1000 ]; do echo 0123456789; i=$((i+1)); done; sleep 30"),
            &cfg,
        )
        .expect_err("must time out");
        match err {
            GuardError::TimedOut { stdout, .. } => {
                let text = String::from_utf8_lossy(&stdout);
                assert!(
                    text.ends_with("[truncated by exo-guard: limit 64 bytes]"),
                    "truncated partial capture must carry the marker, got: {text:?}"
                );
                assert!(
                    text.starts_with("0123456789"),
                    "partial output must be preserved before the marker, got: {text:?}"
                );
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }

    #[test]
    fn timed_out_untruncated_capture_is_not_marked() {
        let cfg = GuardConfig::with_timeout(Duration::from_millis(300));
        let err = run_guarded(&mut sh("echo early; sleep 30"), &cfg).expect_err("must time out");
        match err {
            GuardError::TimedOut { stdout, .. } => {
                assert_eq!(
                    String::from_utf8_lossy(&stdout),
                    "early\n",
                    "a complete (under-cap) partial capture must not be marked"
                );
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }

    #[test]
    fn traced_run_records_guard_phases() {
        let session = exo_obs::session();
        let cfg = GuardConfig::with_timeout(Duration::from_millis(200));
        let _ = run_guarded(&mut sh("echo ok"), &cfg);
        let _ = run_guarded(&mut sh("sleep 30"), &cfg);
        let trace = session.finish();
        let names: Vec<&str> = trace.spans().map(|s| s.name).collect();
        assert!(names.contains(&"guard:run"), "spans: {names:?}");
        assert!(names.contains(&"guard:spawn"), "spans: {names:?}");
        assert!(names.contains(&"guard:wait"), "spans: {names:?}");
        assert!(names.contains(&"guard:kill"), "spans: {names:?}");
        assert!(
            trace.events().any(|e| e.name == "guard:timeout"),
            "the deadline kill must emit a guard:timeout event"
        );
    }

    #[test]
    fn retries_spawn_failures_with_backoff_then_reports() {
        let cfg = GuardConfig {
            spawn_retries: 2,
            backoff_base: Duration::from_millis(1),
            ..GuardConfig::default()
        };
        let err = run_guarded(&mut Command::new("exo2-definitely-not-a-binary"), &cfg)
            .expect_err("missing binary cannot spawn");
        match err {
            GuardError::Spawn { attempts, .. } => assert_eq!(attempts, 3),
            other => panic!("expected Spawn, got {other:?}"),
        }
    }

    #[test]
    fn panic_message_extracts_common_payloads() {
        let err = std::panic::catch_unwind(|| std::panic::panic_any("boom")).unwrap_err();
        assert_eq!(panic_message(err.as_ref()), "boom");
        let err =
            std::panic::catch_unwind(|| std::panic::panic_any(String::from("owned"))).unwrap_err();
        assert_eq!(panic_message(err.as_ref()), "owned");
        let err = std::panic::catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(panic_message(err.as_ref()), "opaque panic payload");
    }
}
