//! Differential validation of the static verifier and the simplifier.
//!
//! Two properties, both cross-checking `exo-analysis` against the
//! reference interpreter:
//!
//! 1. **Verifier soundness.** Random affine procs (constant-extent
//!    allocations, nested loops — some parallel — and affine accesses) are
//!    run through `verify::check_proc`. Whenever the verifier certifies a
//!    proc (zero diagnostics), executing it under the instrumented
//!    interpreter must neither trap out-of-bounds nor trip the
//!    [`ShadowMonitor`] race detector. The verifier may reject safe procs
//!    (it is conservative) but must never certify an unsafe one.
//! 2. **Simplifier meaning preservation.** Random affine expressions over
//!    size arguments — including euclidean `/` and `%` and
//!    divisibility-fact-driven rewrites — evaluate to the same value
//!    before and after `simplify_expr`, under environments satisfying the
//!    facts.

use exo_analysis::{check_proc, simplify_expr, Context};
use exo_interp::{ArgValue, Interpreter, NullMonitor, ProcRegistry, ShadowMonitor};
use exo_ir::{ib, read, var, DataType, Expr, Mem, Proc, ProcBuilder, Stmt, Sym};
use proptest::prelude::*;

/// Deterministic xorshift64* stream (same scheme as the buffer property
/// tests) used to derive random procs/exprs from one seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

// ====================================================================
// Random affine proc generation
// ====================================================================

const BUF_DIM: i64 = 96;
const NBUFS: usize = 2;

/// An affine index in the enclosing iterators: `Σ coeff·iter + c` with
/// small coefficients. Biased toward in-bounds (loop extents are ≤ 8 and
/// `BUF_DIM` is generous) but able to run out of bounds via the constant.
fn gen_index(rng: &mut Rng, iters: &[Sym]) -> Expr {
    let mut e = ib(rng.below(8) as i64);
    for it in iters {
        let coeff = rng.below(4) as i64;
        if coeff > 0 {
            e = e + ib(coeff) * Expr::Var(it.clone());
        }
    }
    if rng.chance(10) {
        // Occasionally push past the end so the OOB side is exercised.
        e = e + ib(BUF_DIM - 4 + rng.below(8) as i64);
    }
    e
}

fn buf_name(i: u64) -> String {
    format!("b{i}")
}

fn gen_stmts(rng: &mut Rng, depth: usize, iters: &mut Vec<Sym>, out: &mut Vec<Stmt>) {
    let nstmts = 1 + rng.below(2);
    for _ in 0..nstmts {
        if depth < 3 && rng.chance(55) {
            let iter = Sym::new(format!("i{}", iters.len()));
            let hi = 2 + rng.below(7) as i64;
            let parallel = rng.chance(40);
            iters.push(iter.clone());
            let mut body = Vec::new();
            gen_stmts(rng, depth + 1, iters, &mut body);
            iters.pop();
            out.push(Stmt::For {
                iter,
                lo: ib(0),
                hi: ib(hi),
                body: exo_ir::Block::from_stmts(body),
                parallel,
            });
        } else {
            let dst = buf_name(rng.below(NBUFS as u64));
            let idx = vec![gen_index(rng, iters)];
            let rhs = if rng.chance(50) {
                read(
                    buf_name(rng.below(NBUFS as u64)).as_str(),
                    vec![gen_index(rng, iters)],
                ) + Expr::Float(1.0)
            } else {
                Expr::Float(rng.below(16) as f64)
            };
            if rng.chance(40) {
                out.push(Stmt::Reduce {
                    buf: Sym::new(dst),
                    idx,
                    rhs,
                });
            } else {
                out.push(Stmt::Assign {
                    buf: Sym::new(dst),
                    idx,
                    rhs,
                });
            }
        }
    }
}

/// A random closed proc: constant-extent local buffers and a random loop
/// nest over them. No arguments, so it runs as-is.
fn gen_proc(rng: &mut Rng) -> Proc {
    let mut stmts = Vec::new();
    gen_stmts(rng, 0, &mut Vec::new(), &mut stmts);
    ProcBuilder::new("p")
        .with_body(|b| {
            for i in 0..NBUFS {
                b.alloc(
                    buf_name(i as u64),
                    DataType::F32,
                    vec![ib(BUF_DIM)],
                    Mem::Dram,
                );
            }
            for s in stmts.drain(..) {
                b.push(s.clone());
            }
        })
        .build()
}

/// Runs the proc under the shadow monitor; `Ok(races)` or the interpreter
/// error (out-of-bounds being the interesting one).
fn shadow_run(proc: &Proc) -> Result<usize, exo_interp::InterpError> {
    let registry = ProcRegistry::new();
    let mut interp = Interpreter::new(&registry);
    let mut shadow = ShadowMonitor::new();
    interp.run_reference(proc, vec![], &mut shadow)?;
    Ok(shadow.races().len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Whatever the static verifier certifies must execute cleanly: no
    /// out-of-bounds trap, no dynamic race on any parallel loop.
    #[test]
    fn certified_procs_never_trip_the_dynamic_detector(seed in 1u64..u64::MAX) {
        let mut rng = Rng::new(seed);
        let proc = gen_proc(&mut rng);
        let diags = check_proc(&proc);
        if diags.is_empty() {
            match shadow_run(&proc) {
                Ok(races) => prop_assert!(
                    races == 0,
                    "verifier certified a racy proc ({races} dynamic races):\n{proc}"
                ),
                Err(e) => prop_assert!(
                    false,
                    "verifier certified a proc the interpreter rejects ({e}):\n{proc}"
                ),
            }
        }
    }
}

/// The differential property is only meaningful if the generator actually
/// produces certified procs (and unsafe ones the verifier rejects). Fixed
/// seed, deterministic counts.
#[test]
fn generator_exercises_both_sides() {
    let mut rng = Rng::new(0x5EED_CAFE);
    let (mut certified, mut rejected, mut dynamic_bad) = (0usize, 0usize, 0usize);
    for _ in 0..400 {
        let proc = gen_proc(&mut rng);
        if check_proc(&proc).is_empty() {
            certified += 1;
        } else {
            rejected += 1;
            match shadow_run(&proc) {
                Ok(races) if races > 0 => dynamic_bad += 1,
                Err(_) => dynamic_bad += 1,
                Ok(_) => {}
            }
        }
    }
    assert!(certified >= 40, "only {certified}/400 procs certified");
    assert!(rejected >= 40, "only {rejected}/400 procs rejected");
    // Some rejections are conservative, but a healthy share must be real
    // dynamic failures or the OOB/race arms of the generator are dead.
    assert!(
        dynamic_bad >= 10,
        "only {dynamic_bad} dynamically-unsafe procs"
    );
}

// ====================================================================
// Simplifier meaning preservation
// ====================================================================

/// A random integer expression over `n` and `m` with euclidean `/` and
/// `%` by positive constants.
fn gen_expr(rng: &mut Rng, depth: usize) -> Expr {
    if depth == 0 || rng.chance(30) {
        return match rng.below(3) {
            0 => ib(rng.below(17) as i64 - 8),
            1 => var("n"),
            _ => var("m"),
        };
    }
    let lhs = gen_expr(rng, depth - 1);
    match rng.below(5) {
        0 => lhs + gen_expr(rng, depth - 1),
        1 => lhs - gen_expr(rng, depth - 1),
        2 => lhs * ib(rng.below(8) as i64 + 1),
        3 => lhs / ib(rng.below(8) as i64 + 1),
        _ => Expr::modulo(lhs, ib(rng.below(8) as i64 + 1)),
    }
}

/// Evaluates an integer expression through the interpreter by storing it
/// into a one-element buffer from a wrapper proc.
fn interp_eval(e: &Expr, n: i64, m: i64) -> f64 {
    let proc = ProcBuilder::new("e")
        .size_arg("n")
        .size_arg("m")
        .tensor_arg("out", DataType::F32, vec![ib(1)], Mem::Dram)
        .with_body(|b| {
            b.assign("out", vec![ib(0)], e.clone());
        })
        .build();
    let registry = ProcRegistry::new();
    let mut interp = Interpreter::new(&registry);
    let (out_buf, out_arg) = ArgValue::zeros(vec![1], DataType::F32);
    interp
        .run_reference(
            &proc,
            vec![ArgValue::Int(n), ArgValue::Int(m), out_arg],
            &mut NullMonitor,
        )
        .unwrap_or_else(|err| panic!("evaluating `{e}` with n={n}, m={m}: {err}"));
    let v = out_buf.borrow().data[0];
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// `simplify_expr` is meaning-preserving: under a context that knows
    /// `n % 8 == 0`, the simplified and original expressions agree on
    /// every environment satisfying that fact.
    #[test]
    fn simplify_expr_preserves_meaning(seed in 1u64..u64::MAX) {
        let mut rng = Rng::new(seed);
        let e = gen_expr(&mut rng, 3);
        let mut ctx = Context::new();
        ctx.add_fact(&Expr::eq_(Expr::modulo(var("n"), ib(8)), ib(0)));
        let simplified = simplify_expr(&e, &ctx);
        let n = 8 * (1 + rng.below(8) as i64);
        let m = 1 + rng.below(63) as i64;
        let got = interp_eval(&simplified, n, m);
        let want = interp_eval(&e, n, m);
        prop_assert!(
            got == want,
            "`{e}` simplifies to `{simplified}` but {want} != {got} at n={n}, m={m}"
        );
    }
}

/// Regression shape: the `(E / k) * k -> E` rewrite fires only under a
/// divisibility fact; both sides must agree with and without it.
#[test]
fn division_rewrite_agrees_with_the_interpreter() {
    let e = (var("n") / ib(8)) * ib(8) + var("m");
    let mut ctx = Context::new();
    ctx.add_fact(&Expr::eq_(Expr::modulo(var("n"), ib(8)), ib(0)));
    let s = simplify_expr(&e, &ctx);
    assert_eq!(s.to_string(), "m + n");
    for n in [8, 64, street_legal(800)] {
        for m in [1, 7] {
            assert_eq!(interp_eval(&e, n, m), interp_eval(&s, n, m));
        }
    }
}

/// Keeps the constant in `i64` form (helper so the test reads clearly).
fn street_legal(n: i64) -> i64 {
    n - n % 8
}

/// Certified library procs also pass the dynamic detector end-to-end: the
/// gemv accumulator shape with its inner loop parallelized runs race-free
/// (reductions commute), while the same proc with a plain assignment into
/// `y[0]` is caught by the shadow monitor.
#[test]
fn shadow_monitor_matches_verifier_on_the_gemv_shape() {
    let build = |reduce: bool| {
        ProcBuilder::new("acc")
            .with_body(|b| {
                b.alloc("y", DataType::F32, vec![ib(4)], Mem::Dram);
                b.alloc("x", DataType::F32, vec![ib(16)], Mem::Dram);
                b.push(Stmt::For {
                    iter: Sym::new("j"),
                    lo: ib(0),
                    hi: ib(16),
                    body: exo_ir::Block::from_stmts(vec![if reduce {
                        Stmt::Reduce {
                            buf: Sym::new("y"),
                            idx: vec![ib(0)],
                            rhs: read("x", vec![var("j")]),
                        }
                    } else {
                        Stmt::Assign {
                            buf: Sym::new("y"),
                            idx: vec![ib(0)],
                            rhs: read("x", vec![var("j")]),
                        }
                    }]),
                    parallel: true,
                });
            })
            .build()
    };
    let reduction = build(true);
    assert!(check_proc(&reduction).is_empty());
    assert_eq!(shadow_run(&reduction).unwrap(), 0);
    let assignment = build(false);
    assert!(!check_proc(&assignment).is_empty());
    assert!(shadow_run(&assignment).unwrap() > 0);
}
