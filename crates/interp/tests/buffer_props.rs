//! Property tests for the buffer linear-index computation.
//!
//! The row-major fold `lin = lin * d + ix` silently wrapped on adversarial
//! shape/stride combinations before it was switched to checked arithmetic:
//! a dimension vector whose product overflows `usize` could map an
//! in-bounds-looking index onto a *valid but wrong* element. These tests
//! recompute every index in 128-bit arithmetic and assert the checked
//! implementation either agrees exactly or reports the access as
//! out-of-bounds (`None`) — never a silently wrapped offset.

use exo_interp::BufferData;
use exo_ir::{DataType, Mem};
use proptest::prelude::*;

/// Deterministic xorshift64* stream (same scheme as the analysis
/// property tests) used to derive adversarial shapes from one seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// An adversarial dimension: tiny, huge, or near an overflow boundary.
fn adversarial_dim(rng: &mut Rng) -> usize {
    match rng.below(6) {
        0 => rng.below(5) as usize,                    // 0..4 (incl. empty dims)
        1 => (rng.below(1 << 20) + 1) as usize,        // ordinary sizes
        2 => usize::MAX,                               // instant overflow
        3 => (1usize << 32) + rng.below(17) as usize,  // u32 boundary
        4 => (1usize << 62) + rng.below(17) as usize,  // near usize::MAX / 2
        _ => usize::MAX / (rng.below(7) + 1) as usize, // divides the max
    }
}

/// Builds a buffer with the given dims *without* allocating the (possibly
/// astronomically large) element count: only `linear_index` is under test
/// and it never touches `data`.
fn buffer_with_dims(dims: Vec<usize>) -> BufferData {
    BufferData {
        data: Vec::new(),
        dims,
        elem: DataType::F32,
        mem: Mem::Dram,
        base_addr: 0,
    }
}

/// The specification: the same fold in 128-bit *saturating* arithmetic.
/// Saturation can only trigger far above `usize::MAX`, so every
/// comparison against representable offsets remains exact.
fn spec_linear_index(dims: &[usize], idx: &[i64]) -> Option<u128> {
    if dims.is_empty() {
        return if idx.is_empty() || idx.iter().all(|&i| i == 0) {
            Some(0)
        } else {
            None
        };
    }
    if idx.len() != dims.len() {
        return None;
    }
    let mut lin: u128 = 0;
    for (&ix, &d) in idx.iter().zip(dims.iter()) {
        if ix < 0 || ix as u64 >= d as u64 {
            return None;
        }
        lin = lin.saturating_mul(d as u128).saturating_add(ix as u128);
    }
    Some(lin)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `linear_index` never silently wraps: it matches the 128-bit
    /// specification exactly whenever it returns `Some`, and returns
    /// `None` (surfaced as `InterpError::OutOfBounds` by the interpreter)
    /// whenever the true offset cannot be represented.
    #[test]
    fn linear_index_never_wraps_on_adversarial_shapes(seed in 1u64..u64::MAX) {
        let mut rng = Rng::new(seed);
        let ndims = (rng.below(5) + 1) as usize;
        let dims: Vec<usize> = (0..ndims).map(|_| adversarial_dim(&mut rng)).collect();
        let buf = buffer_with_dims(dims.clone());
        // Indices biased toward the extremes of every dimension.
        let idx: Vec<i64> = dims
            .iter()
            .map(|&d| match rng.below(5) {
                0 => 0,
                1 => (d as i64).saturating_sub(1).max(0),
                2 => -1,
                3 => d.min(i64::MAX as usize) as i64,
                _ => (rng.next() as i64).saturating_abs() % (d.max(1).min(i64::MAX as usize) as i64).max(1),
            })
            .collect();
        let got = buf.linear_index(&idx);
        let spec = spec_linear_index(&dims, &idx);
        match (got, spec) {
            // Agreement, exactly, with no wrapping.
            (Some(lin), Some(s)) => prop_assert_eq!(lin as u128, s),
            // Rejected because the true offset overflows usize: fine.
            (None, Some(s)) => prop_assert!(
                s > usize::MAX as u128,
                "spurious rejection of representable offset {} for dims {:?} idx {:?}",
                s, dims, idx
            ),
            // Out of bounds in both.
            (None, None) => {}
            (Some(lin), None) => prop_assert!(
                false,
                "accepted out-of-bounds access: lin={} dims={:?} idx={:?}",
                lin, dims, idx
            ),
        }
    }

    /// Wrong-arity and mixed-sign indices are always rejected.
    #[test]
    fn linear_index_rejects_arity_and_sign_mismatches(seed in 1u64..u64::MAX) {
        let mut rng = Rng::new(seed);
        let ndims = (rng.below(4) + 1) as usize;
        let dims: Vec<usize> = (0..ndims).map(|_| (rng.below(100) + 1) as usize).collect();
        let buf = buffer_with_dims(dims.clone());
        let short: Vec<i64> = vec![0; ndims - 1];
        prop_assert_eq!(buf.linear_index(&short), None);
        let long: Vec<i64> = vec![0; ndims + 1];
        prop_assert_eq!(buf.linear_index(&long), None);
        let negative: Vec<i64> = (0..ndims).map(|_| -((rng.below(10) + 1) as i64)).collect();
        prop_assert_eq!(buf.linear_index(&negative), None);
    }
}
