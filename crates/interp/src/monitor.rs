//! Execution monitors: hooks the interpreter reports events to.

use exo_ir::{BinOp, DataType, Mem, Proc};

/// Observes interpreter events. `exo-machine` implements a monitor that
/// turns these events into simulated cycles and cache traffic.
///
/// All methods have empty default implementations so simple monitors only
/// override what they need.
pub trait Monitor {
    /// A call is about to be executed. Returning `true` asks the
    /// interpreter to *still execute the callee's body* but to suppress
    /// per-operation events inside it (used to charge instruction
    /// procedures as single hardware instructions).
    fn enter_call(&mut self, _proc: &Proc) -> bool {
        false
    }

    /// A call finished executing.
    fn exit_call(&mut self, _proc: &Proc) {}

    /// A scalar binary operation was evaluated on value (non-index) data.
    fn on_scalar_op(&mut self, _op: BinOp, _dt: DataType) {}

    /// An element was read from a buffer.
    fn on_read(&mut self, _mem: &Mem, _addr: u64, _bytes: u64) {}

    /// An element was written to a buffer.
    fn on_write(&mut self, _mem: &Mem, _addr: u64, _bytes: u64) {}

    /// A loop began one iteration.
    fn on_loop_iter(&mut self, _parallel: bool) {}

    /// A loop iteration was entered, with the loop's iterator name, a
    /// token unique to this *execution* of the loop statement (sibling
    /// loops may share an iterator name; iterations of one execution share
    /// the token), and the iteration's value. Emitted by the reference
    /// walker only (the lowered path erases loop identity); pairs with
    /// [`Monitor::on_loop_exit`]. Race detectors use the enclosing
    /// (instance, value) stack to attribute a conflicting access pair to
    /// the loop whose iterations conflict.
    fn on_loop_enter(&mut self, _iter: &str, _instance: u64, _value: i64, _parallel: bool) {}

    /// The loop iteration most recently opened by
    /// [`Monitor::on_loop_enter`] finished. Reference walker only.
    fn on_loop_exit(&mut self) {}

    /// The destination read-modify-write of a `Reduce` statement is about
    /// to execute: the read and write reported until
    /// [`Monitor::on_reduce_end`] target the reduction destination (the
    /// right-hand side has already been evaluated). Reference walker only.
    fn on_reduce_begin(&mut self) {}

    /// The `Reduce` destination read-modify-write finished.
    fn on_reduce_end(&mut self) {}

    /// An `if` condition was evaluated.
    fn on_branch(&mut self) {}

    /// A configuration register was written.
    fn on_config_write(&mut self, _config: &str, _field: &str) {}

    /// A statement was executed (any kind).
    fn on_stmt(&mut self) {}
}

/// A monitor that ignores every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullMonitor;

impl Monitor for NullMonitor {}

/// A monitor that counts events; useful in tests and as a simple
/// instruction-mix profiler.
#[derive(Debug, Default, Clone)]
pub struct CountingMonitor {
    /// Number of scalar arithmetic operations.
    pub scalar_ops: u64,
    /// Number of element reads.
    pub reads: u64,
    /// Number of element writes.
    pub writes: u64,
    /// Number of loop iterations.
    pub loop_iters: u64,
    /// Number of branches evaluated.
    pub branches: u64,
    /// Number of calls (instruction or procedure).
    pub calls: u64,
    /// Number of configuration-register writes.
    pub config_writes: u64,
    /// Number of statements executed.
    pub stmts: u64,
}

impl Monitor for CountingMonitor {
    fn enter_call(&mut self, _proc: &Proc) -> bool {
        self.calls += 1;
        false
    }

    fn on_scalar_op(&mut self, _op: BinOp, _dt: DataType) {
        self.scalar_ops += 1;
    }

    fn on_read(&mut self, _mem: &Mem, _addr: u64, _bytes: u64) {
        self.reads += 1;
    }

    fn on_write(&mut self, _mem: &Mem, _addr: u64, _bytes: u64) {
        self.writes += 1;
    }

    fn on_loop_iter(&mut self, _parallel: bool) {
        self.loop_iters += 1;
    }

    fn on_branch(&mut self) {
        self.branches += 1;
    }

    fn on_config_write(&mut self, _config: &str, _field: &str) {
        self.config_writes += 1;
    }

    fn on_stmt(&mut self) {
        self.stmts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_monitor_accumulates() {
        let mut m = CountingMonitor::default();
        m.on_scalar_op(BinOp::Add, DataType::F32);
        m.on_scalar_op(BinOp::Mul, DataType::F32);
        m.on_read(&Mem::Dram, 0, 4);
        m.on_loop_iter(false);
        assert_eq!(m.scalar_ops, 2);
        assert_eq!(m.reads, 1);
        assert_eq!(m.loop_iters, 1);
    }
}
