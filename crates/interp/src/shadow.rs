//! Shadow access logging: a [`Monitor`] that records every element access
//! together with the stack of enclosing loop iterations, then searches the
//! log for data races on parallel loops.
//!
//! This is the *dynamic* side of the static verifier in `exo-analysis`:
//! `verify::check_proc` claims a parallel loop is race-free when distinct
//! iterations provably touch distinct elements (or only commute through
//! reductions). The shadow monitor checks the same property on a concrete
//! execution: two accesses to the same address conflict when at least one
//! is a write and they are not both reduction read-modify-writes; the
//! conflict is a *race* when the innermost loop separating the two
//! accesses (the first enclosing loop at which their iteration values
//! differ) is parallel. The differential property test asserts that no
//! statically-certified proc ever produces such a race.

use crate::monitor::Monitor;
use exo_ir::{BinOp, DataType, Mem, Proc};

/// How an access touched memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Read,
    Write,
    /// Either half of a `Reduce` destination read-modify-write. Reductions
    /// commute, so two `Reduce` accesses to the same address never race.
    Reduce,
}

#[derive(Clone, Debug)]
struct Event {
    addr: u64,
    kind: Kind,
    /// Enclosing loop iterations, outermost first.
    stack: Vec<Frame>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Frame {
    iter: String,
    /// Unique token per loop-statement execution: sibling loops sharing an
    /// iterator name get different tokens, iterations of one execution
    /// share one.
    instance: u64,
    value: i64,
    parallel: bool,
}

/// A data race found in the shadow log.
#[derive(Clone, Debug)]
pub struct Race {
    /// The conflicting address.
    pub addr: u64,
    /// The parallel loop whose iterations conflict.
    pub loop_iter: String,
    /// The two iteration values that touched the address.
    pub iterations: (i64, i64),
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "race on address {}: parallel loop `{}` iterations {} and {} conflict",
            self.addr, self.loop_iter, self.iterations.0, self.iterations.1
        )
    }
}

/// A [`Monitor`] that logs every element access with its enclosing loop
/// iteration stack (reference walker only) and reports data races on
/// parallel loops after the run.
#[derive(Debug, Default)]
pub struct ShadowMonitor {
    stack: Vec<Frame>,
    reduce_depth: usize,
    events: Vec<Event>,
}

impl ShadowMonitor {
    /// A fresh monitor with an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of logged accesses.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether anything was logged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn record(&mut self, addr: u64, kind: Kind) {
        let kind = if self.reduce_depth > 0 {
            Kind::Reduce
        } else {
            kind
        };
        self.events.push(Event {
            addr,
            kind,
            stack: self.stack.clone(),
        });
    }

    /// Searches the log for parallel-loop data races.
    ///
    /// Two events conflict when they hit the same address, at least one is
    /// a write, and they are not both reductions. A conflicting pair is a
    /// race when the first enclosing loop (outermost-in) at which the two
    /// stacks share the loop but differ in iteration value is parallel: a
    /// parallel schedule may then execute the two accesses in either
    /// order. Pairs separated first by a *sequential* loop are ordered by
    /// that loop and cannot race.
    pub fn races(&self) -> Vec<Race> {
        let mut by_addr: std::collections::BTreeMap<u64, Vec<&Event>> =
            std::collections::BTreeMap::new();
        for e in &self.events {
            by_addr.entry(e.addr).or_default().push(e);
        }
        let mut races = Vec::new();
        for events in by_addr.values() {
            for (i, a) in events.iter().enumerate() {
                for b in events.iter().skip(i + 1) {
                    if a.kind == Kind::Read && b.kind == Kind::Read {
                        continue;
                    }
                    if a.kind == Kind::Reduce && b.kind == Kind::Reduce {
                        continue;
                    }
                    if let Some(race) = race_between(a, b) {
                        races.push(race);
                    }
                }
            }
        }
        races
    }
}

/// The loop that separates two events: walk the common prefix of the two
/// iteration stacks; the first frame with the same loop but different
/// values decides (parallel → race, sequential → ordered). Stacks that
/// diverge structurally (different loops) are ordered by the program.
fn race_between(a: &Event, b: &Event) -> Option<Race> {
    for (fa, fb) in a.stack.iter().zip(b.stack.iter()) {
        if fa.instance != fb.instance {
            // Different loop executions (sibling loops, or inner loops
            // re-entered from diverged outer iterations): ordered by the
            // program, never the racing frame.
            return None;
        }
        if fa.value != fb.value {
            if fa.parallel {
                return Some(Race {
                    addr: a.addr,
                    loop_iter: fa.iter.clone(),
                    iterations: (fa.value, fb.value),
                });
            }
            return None;
        }
    }
    None
}

impl Monitor for ShadowMonitor {
    fn on_read(&mut self, _mem: &Mem, addr: u64, _bytes: u64) {
        self.record(addr, Kind::Read);
    }

    fn on_write(&mut self, _mem: &Mem, addr: u64, _bytes: u64) {
        self.record(addr, Kind::Write);
    }

    fn on_loop_enter(&mut self, iter: &str, instance: u64, value: i64, parallel: bool) {
        self.stack.push(Frame {
            iter: iter.to_string(),
            instance,
            value,
            parallel,
        });
    }

    fn on_loop_exit(&mut self) {
        self.stack.pop();
    }

    fn on_reduce_begin(&mut self) {
        self.reduce_depth += 1;
    }

    fn on_reduce_end(&mut self) {
        self.reduce_depth -= 1;
    }

    fn on_scalar_op(&mut self, _op: BinOp, _dt: DataType) {}

    fn enter_call(&mut self, _proc: &Proc) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(iter: &str, instance: u64, value: i64, parallel: bool) -> Frame {
        Frame {
            iter: iter.to_string(),
            instance,
            value,
            parallel,
        }
    }

    #[test]
    fn write_write_on_parallel_loop_races() {
        let mut m = ShadowMonitor::new();
        m.on_loop_enter("i", 1, 0, true);
        m.on_write(&Mem::Dram, 100, 4);
        m.on_loop_exit();
        m.on_loop_enter("i", 1, 1, true);
        m.on_write(&Mem::Dram, 100, 4);
        m.on_loop_exit();
        let races = m.races();
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].loop_iter, "i");
    }

    #[test]
    fn sequential_loop_orders_conflicts() {
        let mut m = ShadowMonitor::new();
        m.on_loop_enter("i", 1, 0, false);
        m.on_write(&Mem::Dram, 100, 4);
        m.on_loop_exit();
        m.on_loop_enter("i", 1, 1, false);
        m.on_write(&Mem::Dram, 100, 4);
        m.on_loop_exit();
        assert!(m.races().is_empty());
    }

    #[test]
    fn reductions_commute() {
        let mut m = ShadowMonitor::new();
        for i in 0..2 {
            m.on_loop_enter("i", 1, i, true);
            m.on_reduce_begin();
            m.on_read(&Mem::Dram, 100, 4);
            m.on_write(&Mem::Dram, 100, 4);
            m.on_reduce_end();
            m.on_loop_exit();
        }
        assert!(m.races().is_empty());
        // But a plain read of the accumulator in another iteration races
        // with the reduction's write.
        m.on_loop_enter("i", 1, 2, true);
        m.on_read(&Mem::Dram, 100, 4);
        m.on_loop_exit();
        assert!(!m.races().is_empty());
    }

    #[test]
    fn disjoint_addresses_never_race() {
        let mut m = ShadowMonitor::new();
        m.on_loop_enter("i", 1, 0, true);
        m.on_write(&Mem::Dram, 100, 4);
        m.on_loop_exit();
        m.on_loop_enter("i", 1, 1, true);
        m.on_write(&Mem::Dram, 104, 4);
        m.on_loop_exit();
        assert!(m.races().is_empty());
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn race_attribution_walks_the_common_prefix() {
        let a = Event {
            addr: 7,
            kind: Kind::Write,
            stack: vec![frame("o", 1, 3, false), frame("i", 2, 0, true)],
        };
        let b = Event {
            addr: 7,
            kind: Kind::Write,
            stack: vec![frame("o", 1, 3, false), frame("i", 2, 2, true)],
        };
        let r = race_between(&a, &b).expect("differs at the parallel frame");
        assert_eq!(r.loop_iter, "i");
        // Same events but separated first by the sequential outer loop.
        let c = Event {
            addr: 7,
            kind: Kind::Write,
            stack: vec![frame("o", 1, 4, false), frame("i", 3, 0, true)],
        };
        assert!(race_between(&a, &c).is_none());
    }
}
