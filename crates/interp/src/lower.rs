//! Lowering: from the `exo_ir` statement tree to a flat, slot-indexed
//! instruction vector.
//!
//! The tree-walking interpreter resolved every [`exo_ir::Sym`] occurrence
//! at run time by scanning a stack of `HashMap<Sym, Binding>` scopes —
//! hashing a string per variable access and allocating two fresh maps per
//! loop iteration. Lowering performs that resolution **once**: a single
//! pre-order walk over a [`Proc`] assigns every *binding site* (argument,
//! allocation, loop iterator, window alias) a dense frame slot, rewrites
//! every symbol occurrence to its slot index, and flattens control flow
//! into a linear [`LInst`] vector executed by a program counter (loops
//! become `Loop`/`EndLoop` pairs, branches become `Branch`/`Jump`).
//!
//! Because resolution is purely lexical and each binding site re-executes
//! before any use on every loop iteration, a slot-indexed environment is
//! observationally identical to the scoped-map environment: a symbol that
//! would have been unbound at run time lowers to an explicit
//! [`LBufRef::Unbound`] marker that raises [`crate::InterpError::Unbound`]
//! only if it is actually evaluated, preserving error timing.
//!
//! Lowered procedures are cached per callee name inside
//! [`crate::ProcRegistry`] (see [`crate::ProcRegistry::register`] for the
//! invalidation contract), so the hot instruction procedures of a kernel
//! are lowered once per registration rather than re-traversed per call.

use exo_ir::{ArgKind, BinOp, DataType, Expr, Mem, Proc, Stmt, Sym, UnOp, WAccess};

/// A reference to a buffer-like operand: either a resolved frame slot or a
/// symbol that was not in scope at the point of use (which errors only
/// when evaluated, like the scoped-map interpreter did).
///
/// Public because the C backend in `exo-codegen` consumes the lowered
/// form: slot resolution done once here serves both the executor and the
/// emitter (slots are the emitter's unique, shadow-free identifiers).
#[derive(Clone, Debug)]
pub enum LBufRef {
    /// Resolved to a frame slot.
    Slot(u32),
    /// Out of scope at the point of use; the name is kept for the error.
    Unbound(Box<str>),
}

/// A lowered scalar expression. Mirrors [`Expr`] with symbols resolved to
/// slots and window expressions replaced by an explicit error marker.
#[derive(Clone, Debug)]
pub enum LExpr {
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// A scalar variable occurrence.
    Var(LBufRef),
    /// A buffer element read.
    Read {
        /// Buffer being read.
        buf: LBufRef,
        /// One lowered index expression per dimension.
        idx: Box<[LExpr]>,
    },
    /// A window expression evaluated in a scalar context (always an error,
    /// raised lazily to preserve the original error timing).
    WindowInScalar,
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<LExpr>,
        /// Right operand.
        rhs: Box<LExpr>,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        arg: Box<LExpr>,
    },
    /// `stride(buf, dim)`.
    Stride {
        /// Buffer whose stride is queried.
        buf: LBufRef,
        /// Dimension index.
        dim: usize,
    },
    /// A configuration-register field read.
    ReadConfig {
        /// Configuration struct name.
        config: Box<str>,
        /// Field name.
        field: Box<str>,
    },
}

/// One narrowing dimension of a lowered window form.
#[derive(Clone, Debug)]
pub enum LWSpec {
    /// A point access: the dimension is dropped from the window's shape.
    Point(LExpr),
    /// An interval access: only `lo` participates in view narrowing
    /// (matching the tree interpreter, which treats the extent as a
    /// scheduling-time property). The pre-computed `extent` (`hi - lo`)
    /// rides along for consumers that instrument accesses — the C
    /// backend's debug-mode bounds checks — without changing execution.
    Interval {
        /// Interval start, the narrowing offset.
        lo: LExpr,
        /// Interval length `hi - lo`, constant-folded when both ends are
        /// literals.
        extent: LExpr,
    },
}

/// An expression used where a tensor is expected: a bare name, a point
/// access, a window — or anything else, which fails with the original
/// expression's rendering when (and only when) it is evaluated.
#[derive(Clone, Debug)]
pub enum LWindow {
    /// A whole tensor passed by name.
    Var {
        /// The tensor.
        buf: LBufRef,
    },
    /// `buf[i, j]` used as a 0-dim window argument.
    PointRead {
        /// The tensor.
        buf: LBufRef,
        /// Point index per dimension.
        idx: Box<[LExpr]>,
    },
    /// A window expression `buf[lo:hi, p, ...]`.
    Window {
        /// The tensor.
        buf: LBufRef,
        /// Per-dimension narrowing.
        spec: Box<[LWSpec]>,
    },
    /// Any other expression shape; fails when evaluated.
    NotATensor {
        /// Source rendering for the error message.
        display: Box<str>,
    },
}

/// A lowered call argument. The binding mode is chosen at run time from
/// the callee's parameter kind, so both the scalar and the window form are
/// pre-lowered.
#[derive(Clone, Debug)]
pub struct LCallArg {
    /// The argument lowered as a scalar expression.
    pub scalar: LExpr,
    /// The argument lowered as a tensor/window expression.
    pub window: LWindow,
}

/// Parameter kinds, reduced to what argument binding needs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LParamKind {
    /// A `size` parameter.
    Size,
    /// A scalar value parameter.
    Scalar,
    /// A tensor (buffer or window) parameter.
    Tensor,
}

/// A lowered procedure parameter.
#[derive(Clone, Debug)]
pub struct LArg {
    /// Frame slot the parameter binds.
    pub slot: u32,
    /// Parameter kind.
    pub kind: LParamKind,
}

/// One flat instruction. `Loop`/`EndLoop` and `Branch`/`Jump` encode the
/// structured control flow with absolute instruction indices. The
/// encoding is block-structured by construction — every `Loop`'s body is
/// the contiguous range `(loop_pc, end)` — which is what lets the C
/// backend re-emit structured source from the flat vector.
#[derive(Clone, Debug)]
pub enum LInst {
    /// `buf[idx...] = rhs`.
    Assign {
        /// Destination buffer.
        buf: LBufRef,
        /// Destination index per dimension.
        idx: Box<[LExpr]>,
        /// Value written.
        rhs: LExpr,
    },
    /// `buf[idx...] += rhs`.
    Reduce {
        /// Destination buffer.
        buf: LBufRef,
        /// Destination index per dimension.
        idx: Box<[LExpr]>,
        /// Value accumulated.
        rhs: LExpr,
    },
    /// Buffer allocation bound to a frame slot.
    Alloc {
        /// Slot the buffer binds.
        slot: u32,
        /// Element type.
        ty: DataType,
        /// Dimension sizes.
        dims: Box<[LExpr]>,
        /// Memory space.
        mem: Mem,
    },
    /// Evaluates the bounds and either enters the body (next instruction)
    /// or jumps past the matching `EndLoop` at index `end`.
    Loop {
        /// Slot of the iterator.
        iter: u32,
        /// Inclusive lower bound.
        lo: LExpr,
        /// Exclusive upper bound.
        hi: LExpr,
        /// Index of the matching [`LInst::EndLoop`].
        end: u32,
        /// Whether iterations may execute in parallel.
        parallel: bool,
    },
    /// Advances the innermost loop; jumps back to `start + 1` while
    /// iterations remain.
    EndLoop {
        /// Index of the matching [`LInst::Loop`].
        start: u32,
    },
    /// Falls through into the then-branch on true, jumps to `else_start`
    /// on false.
    Branch {
        /// Branch condition.
        cond: LExpr,
        /// First instruction of the else-branch.
        else_start: u32,
    },
    /// Unconditional jump (closes a then-branch).
    Jump {
        /// Jump target.
        to: u32,
    },
    /// A call to another procedure.
    Call {
        /// Callee name.
        callee: Box<str>,
        /// Pre-lowered arguments.
        args: Box<[LCallArg]>,
    },
    /// The empty statement.
    Pass,
    /// A configuration-register write.
    WriteConfig {
        /// Configuration struct name.
        config: Box<str>,
        /// Field name.
        field: Box<str>,
        /// Value written.
        value: LExpr,
    },
    /// Binds a window alias to a frame slot.
    WindowBind {
        /// Slot the alias binds.
        slot: u32,
        /// The window it aliases.
        rhs: LWindow,
    },
}

/// A procedure lowered to a flat instruction vector with slot-resolved
/// operands. Obtained from [`lower`]; executed by
/// [`crate::Interpreter::run`].
#[derive(Clone, Debug)]
pub struct LoweredProc {
    pub(crate) name: String,
    pub(crate) frame_size: usize,
    pub(crate) args: Vec<LArg>,
    /// Precondition expressions paired with their source rendering (used
    /// verbatim in `AssertFailed` messages).
    pub(crate) preds: Vec<(LExpr, String)>,
    pub(crate) code: Vec<LInst>,
    /// Source name of each slot, for error messages.
    pub(crate) slot_names: Vec<String>,
    pub(crate) max_loop_depth: usize,
}

impl LoweredProc {
    /// Name of the source procedure.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of dense environment slots a call frame needs. Always equal
    /// to [`Proc::binding_site_count`] of the source procedure.
    pub fn frame_size(&self) -> usize {
        self.frame_size
    }

    /// Number of flat instructions (including loop/branch bookkeeping).
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// The flat instruction vector.
    pub fn code(&self) -> &[LInst] {
        &self.code
    }

    /// The lowered parameters, in declaration order.
    pub fn args(&self) -> &[LArg] {
        &self.args
    }

    /// The lowered assertion preconditions, each paired with its source
    /// rendering.
    pub fn preds(&self) -> &[(LExpr, String)] {
        &self.preds
    }

    /// Source name of every frame slot, in slot order (binding-site
    /// pre-order). Shadowed names appear more than once; the slot index
    /// is the unique identity.
    pub fn slot_names(&self) -> &[String] {
        &self.slot_names
    }

    /// Maximum loop nesting depth of the body.
    pub fn max_loop_depth(&self) -> usize {
        self.max_loop_depth
    }
}

/// Lowers a procedure. Lowering never fails: symbols that are not in
/// scope become lazy [`crate::InterpError::Unbound`] sites, exactly like
/// the scoped-map interpreter which only errored when the use executed.
pub fn lower(proc: &Proc) -> LoweredProc {
    let mut lw = Lowerer {
        slot_names: Vec::with_capacity(proc.binding_site_count()),
        scope: Vec::new(),
        marks: Vec::new(),
        code: Vec::new(),
        depth: 0,
        max_depth: 0,
    };
    let mut args = Vec::with_capacity(proc.args().len());
    for arg in proc.args() {
        let kind = match &arg.kind {
            ArgKind::Size => LParamKind::Size,
            ArgKind::Scalar { .. } => LParamKind::Scalar,
            ArgKind::Tensor { .. } => LParamKind::Tensor,
        };
        let slot = lw.bind(&arg.name);
        args.push(LArg { slot, kind });
    }
    let preds = proc
        .preds()
        .iter()
        .map(|p| (lw.lower_expr(p), p.to_string()))
        .collect();
    lw.lower_block(proc.body().stmts());
    debug_assert_eq!(
        lw.slot_names.len(),
        proc.binding_site_count(),
        "slot assignment must agree with Proc::binding_site_count"
    );
    LoweredProc {
        name: proc.name().to_string(),
        frame_size: lw.slot_names.len(),
        args,
        preds,
        code: lw.code,
        slot_names: lw.slot_names,
        max_loop_depth: lw.max_depth,
    }
}

struct Lowerer {
    slot_names: Vec<String>,
    /// Lexical scope stack: innermost bindings at the back.
    scope: Vec<(Sym, u32)>,
    /// Scope boundaries (indices into `scope`).
    marks: Vec<usize>,
    code: Vec<LInst>,
    depth: usize,
    max_depth: usize,
}

impl Lowerer {
    fn push_scope(&mut self) {
        self.marks.push(self.scope.len());
    }

    fn pop_scope(&mut self) {
        if let Some(mark) = self.marks.pop() {
            self.scope.truncate(mark);
        }
    }

    fn bind(&mut self, sym: &Sym) -> u32 {
        let slot = self.slot_names.len() as u32;
        self.slot_names.push(sym.name().to_string());
        self.scope.push((sym.clone(), slot));
        slot
    }

    fn resolve(&self, sym: &Sym) -> LBufRef {
        match self.scope.iter().rev().find(|(s, _)| s == sym) {
            Some((_, slot)) => LBufRef::Slot(*slot),
            None => LBufRef::Unbound(sym.name().into()),
        }
    }

    fn lower_expr(&self, e: &Expr) -> LExpr {
        match e {
            Expr::Int(v) => LExpr::Int(*v),
            Expr::Float(v) => LExpr::Float(*v),
            Expr::Bool(b) => LExpr::Bool(*b),
            Expr::Var(s) => LExpr::Var(self.resolve(s)),
            Expr::Read { buf, idx } => LExpr::Read {
                buf: self.resolve(buf),
                idx: idx.iter().map(|i| self.lower_expr(i)).collect(),
            },
            Expr::Window { .. } => LExpr::WindowInScalar,
            Expr::Bin { op, lhs, rhs } => LExpr::Bin {
                op: *op,
                lhs: Box::new(self.lower_expr(lhs)),
                rhs: Box::new(self.lower_expr(rhs)),
            },
            Expr::Un { op, arg } => LExpr::Un {
                op: *op,
                arg: Box::new(self.lower_expr(arg)),
            },
            Expr::Stride { buf, dim } => LExpr::Stride {
                buf: self.resolve(buf),
                dim: *dim,
            },
            Expr::ReadConfig { config, field } => LExpr::ReadConfig {
                config: config.name().into(),
                field: field.as_str().into(),
            },
        }
    }

    /// Lowers an expression used where a tensor is expected, mirroring the
    /// case analysis of the tree interpreter's `eval_window`.
    fn lower_window(&self, e: &Expr) -> LWindow {
        match e {
            Expr::Var(s) => LWindow::Var {
                buf: self.resolve(s),
            },
            Expr::Read { buf, idx } if !idx.is_empty() => LWindow::PointRead {
                buf: self.resolve(buf),
                idx: idx.iter().map(|i| self.lower_expr(i)).collect(),
            },
            Expr::Window { buf, idx } => LWindow::Window {
                buf: self.resolve(buf),
                spec: idx
                    .iter()
                    .map(|w| match w {
                        WAccess::Point(p) => LWSpec::Point(self.lower_expr(p)),
                        WAccess::Interval(lo, hi) => {
                            let lo_l = self.lower_expr(lo);
                            let hi_l = self.lower_expr(hi);
                            let extent = match (&lo_l, &hi_l) {
                                (LExpr::Int(a), LExpr::Int(b)) => LExpr::Int(b - a),
                                (LExpr::Int(0), _) => hi_l.clone(),
                                _ => LExpr::Bin {
                                    op: BinOp::Sub,
                                    lhs: Box::new(hi_l),
                                    rhs: Box::new(lo_l.clone()),
                                },
                            };
                            LWSpec::Interval { lo: lo_l, extent }
                        }
                    })
                    .collect(),
            },
            other => LWindow::NotATensor {
                display: other.to_string().into(),
            },
        }
    }

    fn lower_block(&mut self, stmts: &[Stmt]) {
        self.push_scope();
        for s in stmts {
            self.lower_stmt(s);
        }
        self.pop_scope();
    }

    fn lower_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Assign { buf, idx, rhs } => {
                let inst = LInst::Assign {
                    buf: self.resolve(buf),
                    idx: idx.iter().map(|i| self.lower_expr(i)).collect(),
                    rhs: self.lower_expr(rhs),
                };
                self.code.push(inst);
            }
            Stmt::Reduce { buf, idx, rhs } => {
                let inst = LInst::Reduce {
                    buf: self.resolve(buf),
                    idx: idx.iter().map(|i| self.lower_expr(i)).collect(),
                    rhs: self.lower_expr(rhs),
                };
                self.code.push(inst);
            }
            Stmt::Alloc {
                name,
                ty,
                dims,
                mem,
            } => {
                // Dimensions resolve before the name is bound, so a
                // self-referential allocation sees the outer binding.
                let dims: Box<[LExpr]> = dims.iter().map(|d| self.lower_expr(d)).collect();
                let slot = self.bind(name);
                self.code.push(LInst::Alloc {
                    slot,
                    ty: *ty,
                    dims,
                    mem: mem.clone(),
                });
            }
            Stmt::For {
                iter,
                lo,
                hi,
                body,
                parallel,
            } => {
                // Bounds resolve outside the iterator's scope.
                let lo = self.lower_expr(lo);
                let hi = self.lower_expr(hi);
                self.push_scope();
                let islot = self.bind(iter);
                let loop_pc = self.code.len();
                self.code.push(LInst::Loop {
                    iter: islot,
                    lo,
                    hi,
                    end: 0, // patched below
                    parallel: *parallel,
                });
                self.depth += 1;
                self.max_depth = self.max_depth.max(self.depth);
                self.lower_block(body.stmts());
                self.depth -= 1;
                let end_pc = self.code.len();
                self.code.push(LInst::EndLoop {
                    start: loop_pc as u32,
                });
                if let LInst::Loop { end, .. } = &mut self.code[loop_pc] {
                    *end = end_pc as u32;
                }
                self.pop_scope();
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let cond = self.lower_expr(cond);
                let branch_pc = self.code.len();
                self.code.push(LInst::Branch {
                    cond,
                    else_start: 0, // patched below
                });
                self.lower_block(then_body.stmts());
                let jump_pc = self.code.len();
                self.code.push(LInst::Jump { to: 0 }); // patched below
                let else_start = self.code.len() as u32;
                if let LInst::Branch { else_start: e, .. } = &mut self.code[branch_pc] {
                    *e = else_start;
                }
                self.lower_block(else_body.stmts());
                let end = self.code.len() as u32;
                if let LInst::Jump { to } = &mut self.code[jump_pc] {
                    *to = end;
                }
            }
            Stmt::Call { proc, args } => {
                let args: Box<[LCallArg]> = args
                    .iter()
                    .map(|a| LCallArg {
                        scalar: self.lower_expr(a),
                        window: self.lower_window(a),
                    })
                    .collect();
                self.code.push(LInst::Call {
                    callee: proc.as_str().into(),
                    args,
                });
            }
            Stmt::Pass => self.code.push(LInst::Pass),
            Stmt::WriteConfig {
                config,
                field,
                value,
            } => {
                let inst = LInst::WriteConfig {
                    config: config.name().into(),
                    field: field.as_str().into(),
                    value: self.lower_expr(value),
                };
                self.code.push(inst);
            }
            Stmt::WindowStmt { name, rhs } => {
                let rhs = self.lower_window(rhs);
                let slot = self.bind(name);
                self.code.push(LInst::WindowBind { slot, rhs });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_ir::{fb, ib, read, var, ProcBuilder};

    fn sample() -> Proc {
        ProcBuilder::new("p")
            .size_arg("n")
            .tensor_arg("x", DataType::F32, vec![var("n")], Mem::Dram)
            .for_("i", ib(0), var("n"), |b| {
                b.alloc("t", DataType::F32, vec![], Mem::Dram);
                b.assign("t", vec![], fb(0.0));
                b.assign("x", vec![var("i")], read("t", vec![]));
            })
            .build()
    }

    #[test]
    fn frame_size_matches_binding_site_count() {
        let p = sample();
        let lp = lower(&p);
        assert_eq!(lp.frame_size(), p.binding_site_count());
        // n, x, i, t
        assert_eq!(lp.frame_size(), 4);
        assert_eq!(lp.name(), "p");
    }

    #[test]
    fn loops_lower_to_balanced_loop_endloop_pairs() {
        let lp = lower(&sample());
        let loops = lp
            .code
            .iter()
            .filter(|i| matches!(i, LInst::Loop { .. }))
            .count();
        let ends = lp
            .code
            .iter()
            .filter(|i| matches!(i, LInst::EndLoop { .. }))
            .count();
        assert_eq!(loops, 1);
        assert_eq!(ends, 1);
        assert_eq!(lp.max_loop_depth, 1);
        // The Loop's `end` field points at the EndLoop.
        let end = lp
            .code
            .iter()
            .position(|i| matches!(i, LInst::EndLoop { .. }))
            .expect("has an EndLoop");
        let start = lp
            .code
            .iter()
            .position(|i| matches!(i, LInst::Loop { .. }))
            .expect("has a Loop");
        match (&lp.code[start], &lp.code[end]) {
            (LInst::Loop { end: e, .. }, LInst::EndLoop { start: s }) => {
                assert_eq!(*e as usize, end);
                assert_eq!(*s as usize, start);
            }
            other => panic!("expected matching Loop/EndLoop, got {other:?}"),
        }
    }

    #[test]
    fn out_of_scope_symbols_lower_to_unbound_markers() {
        let p = ProcBuilder::new("p")
            .tensor_arg("x", DataType::F32, vec![ib(1)], Mem::Dram)
            .with_body(|b| {
                b.assign("x", vec![ib(0)], read("ghost", vec![]));
            })
            .build();
        let lp = lower(&p);
        let LInst::Assign { rhs, .. } = &lp.code[0] else {
            panic!("expected an assign instruction");
        };
        // `ghost` was never bound; `read("ghost", vec![])` has an empty
        // index list so it lowers as a (lazily unbound) variable-style read.
        match rhs {
            LExpr::Read {
                buf: LBufRef::Unbound(name),
                ..
            } => assert_eq!(&**name, "ghost"),
            other => panic!("expected unbound read, got {other:?}"),
        }
    }

    #[test]
    fn shadowing_resolves_to_the_innermost_binding() {
        // Two loops over `i`: each body's `i` must resolve to its own slot.
        let p = ProcBuilder::new("p")
            .tensor_arg("x", DataType::F32, vec![ib(8)], Mem::Dram)
            .for_("i", ib(0), ib(4), |b| {
                b.assign("x", vec![var("i")], fb(1.0));
            })
            .build();
        let p = {
            let mut p2 = p.clone();
            p2.body_mut().stmts_mut().extend(p.body().iter().cloned());
            p2
        };
        let lp = lower(&p);
        let iters: Vec<u32> = lp
            .code
            .iter()
            .filter_map(|i| match i {
                LInst::Loop { iter, .. } => Some(*iter),
                _ => None,
            })
            .collect();
        assert_eq!(iters.len(), 2);
        assert_ne!(iters[0], iters[1], "each loop gets its own slot");
        // Each body's store index uses the matching iterator slot.
        let idx_slots: Vec<u32> = lp
            .code
            .iter()
            .filter_map(|i| match i {
                LInst::Assign { idx, .. } => match &idx[0] {
                    LExpr::Var(LBufRef::Slot(s)) => Some(*s),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        assert_eq!(idx_slots, iters);
    }
}
