//! Concrete buffers, views, and argument values.

use exo_ir::{DataType, Mem};
use std::cell::RefCell;
use std::rc::Rc;

/// A concrete, dense, row-major buffer.
///
/// All element types are stored as `f64`; integer types hold exact values
/// (well within `f64`'s 53-bit integer range for the workloads in the
/// paper), which keeps the interpreter simple while preserving
/// equivalence-checking fidelity.
#[derive(Clone, Debug, PartialEq)]
pub struct BufferData {
    /// Element storage, row-major.
    pub data: Vec<f64>,
    /// Dimension sizes.
    pub dims: Vec<usize>,
    /// Declared element type.
    pub elem: DataType,
    /// Memory space the buffer lives in.
    pub mem: Mem,
    /// Base byte address assigned by the interpreter's bump allocator
    /// (used by the cache model in `exo-machine`).
    pub base_addr: u64,
}

impl BufferData {
    /// Creates a zero-initialized buffer.
    pub fn zeros(dims: Vec<usize>, elem: DataType, mem: Mem) -> Self {
        let n: usize = dims.iter().product::<usize>().max(1);
        BufferData {
            data: vec![0.0; n],
            dims,
            elem,
            mem,
            base_addr: 0,
        }
    }

    /// Creates a buffer from existing data (dims must multiply to
    /// `data.len()`, or be empty for a scalar buffer of length 1).
    pub fn from_vec(data: Vec<f64>, dims: Vec<usize>, elem: DataType, mem: Mem) -> Self {
        let expect: usize = dims.iter().product::<usize>().max(1);
        assert_eq!(data.len(), expect, "data length must match dims");
        BufferData {
            data,
            dims,
            elem,
            mem,
            base_addr: 0,
        }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major linear index of a multi-dimensional index.
    ///
    /// All arithmetic is checked: adversarial dimension vectors whose
    /// products overflow `usize` yield `None` (reported as out-of-bounds
    /// by the interpreter) instead of silently wrapping into a valid but
    /// wrong element.
    pub fn linear_index(&self, idx: &[i64]) -> Option<usize> {
        if self.dims.is_empty() {
            return if idx.is_empty() || idx.iter().all(|&i| i == 0) {
                Some(0)
            } else {
                None
            };
        }
        if idx.len() != self.dims.len() {
            return None;
        }
        let mut lin = 0usize;
        for (&ix, &d) in idx.iter().zip(self.dims.iter()) {
            if ix < 0 || ix as u64 >= d as u64 {
                return None;
            }
            lin = lin.checked_mul(d)?.checked_add(ix as usize)?;
        }
        Some(lin)
    }

    /// Size of one element in bytes.
    pub fn elem_bytes(&self) -> u64 {
        self.elem.size_bytes()
    }
}

/// Shared, mutable reference to a buffer.
pub type BufRef = Rc<RefCell<BufferData>>;

/// A (possibly windowed) view of a buffer.
///
/// A view exposes `kept.len()` dimensions of the underlying buffer; each
/// exposed dimension `k` maps view index `j` to underlying index
/// `offsets[kept[k]] + j`, and dropped (point) dimensions are pinned at
/// `offsets[d]`.
#[derive(Clone, Debug)]
pub struct View {
    /// The underlying buffer.
    pub buf: BufRef,
    /// Per-underlying-dimension base offsets.
    pub offsets: Vec<i64>,
    /// Which underlying dimensions the view exposes, in order.
    pub kept: Vec<usize>,
}

impl View {
    /// A full view of a buffer (no offsets, all dimensions kept).
    pub fn full(buf: BufRef) -> Self {
        let ndims = buf.borrow().dims.len();
        View {
            buf,
            offsets: vec![0; ndims],
            kept: (0..ndims).collect(),
        }
    }

    /// Translates a view index into an underlying buffer index.
    ///
    /// Additions saturate: an index extreme enough to overflow `i64`
    /// cannot wrap around into bounds, so it is reported out-of-bounds by
    /// [`BufferData::linear_index`] like any other bad index.
    pub fn translate(&self, idx: &[i64]) -> Vec<i64> {
        let mut out = self.offsets.clone();
        for (k, &dim) in self.kept.iter().enumerate() {
            if let Some(&i) = idx.get(k) {
                out[dim] = out[dim].saturating_add(i);
            }
        }
        out
    }

    /// Precomputes a dense access plan for this view: the linear base
    /// offset plus one `(offset, extent, stride)` triple per exposed
    /// dimension. Returns `None` when the plan cannot be proven safe up
    /// front (stride products overflowing `usize`, or a dropped dimension
    /// pinned out of bounds) — callers then fall back to the checked
    /// [`View::read`]/[`View::write`] path, which reports the identical
    /// error the tree interpreter would have.
    pub(crate) fn plan(&self) -> Option<AccessPlan> {
        let buf = self.buf.borrow();
        let nd = buf.dims.len();
        // Row-major suffix-product strides, checked. The final
        // accumulator is the total element count: requiring it to fit in
        // `usize` proves every in-bounds linear offset is overflow-free.
        let mut strides = vec![1usize; nd];
        let mut acc = 1usize;
        for (d, s) in strides.iter_mut().enumerate().rev() {
            *s = acc;
            acc = acc.checked_mul(buf.dims[d])?;
        }
        let mut base = 0usize;
        let mut kept_iter = self.kept.iter().peekable();
        let mut dims = Vec::with_capacity(self.kept.len());
        for (d, &stride) in strides.iter().enumerate() {
            if kept_iter.peek() == Some(&&d) {
                kept_iter.next();
                dims.push(PlanDim {
                    off: self.offsets[d],
                    extent: buf.dims[d],
                    stride,
                });
            } else {
                // Dropped dimension: pinned at its offset for every access.
                let off = self.offsets[d];
                if off < 0 || off as u64 >= buf.dims[d] as u64 {
                    return None;
                }
                base = base.checked_add((off as usize).checked_mul(stride)?)?;
            }
        }
        Some(AccessPlan {
            base,
            dims: dims.into_boxed_slice(),
        })
    }

    /// Narrows this view by a further window: `spec` gives, per exposed
    /// dimension, either a point (drop the dimension) or an interval start
    /// (keep the dimension with an extra offset).
    pub fn narrow(&self, spec: &[WindowDim]) -> View {
        let mut offsets = self.offsets.clone();
        let mut kept = Vec::new();
        for (k, w) in spec.iter().enumerate() {
            let dim = self.kept[k];
            // Saturating, like `translate`: an offset extreme enough to
            // overflow cannot wrap back into bounds, so it surfaces as an
            // ordinary out-of-bounds access instead of a wrong element.
            match w {
                WindowDim::Point(p) => offsets[dim] = offsets[dim].saturating_add(*p),
                WindowDim::Interval(lo) => {
                    offsets[dim] = offsets[dim].saturating_add(*lo);
                    kept.push(dim);
                }
            }
        }
        // Dimensions beyond the spec stay kept unchanged.
        for &dim in self.kept.iter().skip(spec.len()) {
            kept.push(dim);
        }
        View {
            buf: self.buf.clone(),
            offsets,
            kept,
        }
    }

    /// Reads one element through the view.
    pub fn read(&self, idx: &[i64]) -> Option<f64> {
        let under = self.translate(idx);
        let buf = self.buf.borrow();
        let lin = buf.linear_index(&under)?;
        buf.data.get(lin).copied()
    }

    /// Writes one element through the view.
    pub fn write(&self, idx: &[i64], value: f64) -> Option<()> {
        let under = self.translate(idx);
        let mut buf = self.buf.borrow_mut();
        let lin = buf.linear_index(&under)?;
        *buf.data.get_mut(lin)? = value;
        Some(())
    }

    /// The byte address of an element (for the cache model).
    pub fn byte_addr(&self, idx: &[i64]) -> Option<u64> {
        let under = self.translate(idx);
        let buf = self.buf.borrow();
        let lin = buf.linear_index(&under)?;
        Some(buf.base_addr + lin as u64 * buf.elem_bytes())
    }

    /// The memory space of the underlying buffer.
    pub fn mem(&self) -> Mem {
        self.buf.borrow().mem.clone()
    }

    /// The element type of the underlying buffer.
    pub fn elem(&self) -> DataType {
        self.buf.borrow().elem
    }
}

/// A precomputed dense access plan for a [`View`]: resolves a view index
/// to a linear element offset with one multiply-add per dimension and no
/// allocation (see [`View::plan`]).
#[derive(Clone, Debug)]
pub(crate) struct AccessPlan {
    /// Linear offset contributed by dropped (point) dimensions.
    base: usize,
    /// Per exposed dimension: window offset, underlying extent, stride.
    dims: Box<[PlanDim]>,
}

#[derive(Clone, Debug)]
pub(crate) struct PlanDim {
    off: i64,
    extent: usize,
    stride: usize,
}

impl AccessPlan {
    /// Linear element offset of `idx`, or `None` when the access is out of
    /// bounds or has the wrong arity (callers fall back to the slow,
    /// fully-checked path to produce the canonical error or to reproduce
    /// the tree interpreter's lenient arity handling).
    #[inline]
    pub(crate) fn lin(&self, idx: &[i64]) -> Option<usize> {
        if idx.len() != self.dims.len() {
            return None;
        }
        let mut lin = self.base;
        for (d, &i) in self.dims.iter().zip(idx) {
            let v = i.checked_add(d.off)?;
            if v < 0 || v as u64 >= d.extent as u64 {
                return None;
            }
            // In range: `base + Σ (extent-1)·stride < len`, proven at plan
            // construction, so unchecked addition cannot overflow.
            lin += v as usize * d.stride;
        }
        Some(lin)
    }
}

/// One narrowing specification per exposed dimension (see [`View::narrow`]).
#[derive(Clone, Debug, PartialEq)]
pub enum WindowDim {
    /// Pin the dimension at an offset (the dimension is dropped).
    Point(i64),
    /// Keep the dimension, shifted by an offset.
    Interval(i64),
}

/// A concrete argument passed to [`crate::Interpreter::run`].
#[derive(Clone, Debug)]
pub enum ArgValue {
    /// A `size` or integer scalar argument.
    Int(i64),
    /// A floating-point scalar argument.
    Float(f64),
    /// A boolean scalar argument.
    Bool(bool),
    /// A tensor argument.
    Buffer(BufRef),
    /// A windowed tensor argument.
    View(View),
}

impl ArgValue {
    /// Convenience: wraps fresh zero-filled buffer data.
    pub fn zeros(dims: Vec<usize>, elem: DataType) -> (BufRef, ArgValue) {
        let buf = Rc::new(RefCell::new(BufferData::zeros(dims, elem, Mem::Dram)));
        (buf.clone(), ArgValue::Buffer(buf))
    }

    /// Convenience: wraps existing data in a DRAM buffer.
    pub fn from_vec(data: Vec<f64>, dims: Vec<usize>, elem: DataType) -> (BufRef, ArgValue) {
        let buf = Rc::new(RefCell::new(BufferData::from_vec(
            data,
            dims,
            elem,
            Mem::Dram,
        )));
        (buf.clone(), ArgValue::Buffer(buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_indexing_is_row_major() {
        let b = BufferData::zeros(vec![3, 4], DataType::F32, Mem::Dram);
        assert_eq!(b.linear_index(&[0, 0]), Some(0));
        assert_eq!(b.linear_index(&[1, 0]), Some(4));
        assert_eq!(b.linear_index(&[2, 3]), Some(11));
        assert_eq!(b.linear_index(&[3, 0]), None);
        assert_eq!(b.linear_index(&[0, -1]), None);
        assert_eq!(b.linear_index(&[0]), None);
    }

    #[test]
    fn scalar_buffers_have_one_element() {
        let b = BufferData::zeros(vec![], DataType::F32, Mem::Dram);
        assert_eq!(b.len(), 1);
        assert_eq!(b.linear_index(&[]), Some(0));
    }

    #[test]
    fn views_translate_and_narrow() {
        let buf = Rc::new(RefCell::new(BufferData::from_vec(
            (0..12).map(|v| v as f64).collect(),
            vec![3, 4],
            DataType::F32,
            Mem::Dram,
        )));
        let full = View::full(buf.clone());
        assert_eq!(full.read(&[1, 2]), Some(6.0));
        // Narrow to row 1, columns 1..4 -> a 1-D view of length 3.
        let row = full.narrow(&[WindowDim::Point(1), WindowDim::Interval(1)]);
        assert_eq!(row.kept.len(), 1);
        assert_eq!(row.read(&[0]), Some(5.0));
        assert_eq!(row.read(&[2]), Some(7.0));
        row.write(&[0], 99.0).unwrap();
        assert_eq!(buf.borrow().data[5], 99.0);
    }

    #[test]
    fn nested_narrowing_accumulates_offsets() {
        let buf = Rc::new(RefCell::new(BufferData::zeros(
            vec![8, 8],
            DataType::F32,
            Mem::Dram,
        )));
        let v1 = View::full(buf.clone()).narrow(&[WindowDim::Interval(2), WindowDim::Interval(2)]);
        let v2 = v1.narrow(&[WindowDim::Interval(1), WindowDim::Point(3)]);
        // v2 index [0] maps to underlying [3, 5].
        v2.write(&[0], 7.0).unwrap();
        assert_eq!(buf.borrow().data[3 * 8 + 5], 7.0);
    }

    #[test]
    fn byte_addresses_respect_element_size() {
        let mut data = BufferData::zeros(vec![4], DataType::F64, Mem::Dram);
        data.base_addr = 1000;
        let buf = Rc::new(RefCell::new(data));
        let v = View::full(buf);
        assert_eq!(v.byte_addr(&[0]), Some(1000));
        assert_eq!(v.byte_addr(&[3]), Some(1024));
    }
}
