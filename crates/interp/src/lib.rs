//! # exo-interp — reference interpreter for the Exo object language
//!
//! The interpreter executes a [`exo_ir::Proc`] on concrete buffers. It has
//! two jobs in this reproduction:
//!
//! 1. **Equivalence testing.** Every scheduling primitive in `exo-core` is
//!    required to preserve functional equivalence; the test suites run the
//!    original and the scheduled procedure on identical random inputs and
//!    compare the resulting buffers.
//! 2. **Performance simulation.** The interpreter reports every scalar
//!    operation, memory access, loop iteration and instruction call to a
//!    pluggable [`Monitor`]; `exo-machine` implements a monitor that
//!    charges cycle costs and simulates the cache hierarchy, which is how
//!    the paper's performance figures are reproduced without the authors'
//!    hardware (see `DESIGN.md`).
//!
//! Calls are resolved against a [`ProcRegistry`]. Instruction procedures
//! (e.g. `mm512_fmadd_ps`, Gemmini's `do_matmul_acc_i8`) carry their
//! semantics as ordinary object code in their bodies, so the interpreter
//! executes them like any other call while the monitor may charge them as
//! single hardware instructions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod error;
mod exec;
mod lower;
mod monitor;
mod registry;
mod shadow;

pub use buffer::{ArgValue, BufRef, BufferData, View};
pub use error::InterpError;
pub use exec::{InstProfile, Interpreter};
pub use lower::{
    lower, LArg, LBufRef, LCallArg, LExpr, LInst, LParamKind, LWSpec, LWindow, LoweredProc,
};
pub use monitor::{CountingMonitor, Monitor, NullMonitor};
pub use registry::ProcRegistry;
pub use shadow::{Race, ShadowMonitor};

/// Result alias for interpreter operations.
pub type Result<T> = std::result::Result<T, InterpError>;
