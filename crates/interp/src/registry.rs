//! A registry of procedures resolvable by call statements.

use crate::lower::{lower, LoweredProc};
use exo_ir::Proc;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Maps procedure names to their definitions.
///
/// Object code may call sub-procedures and instruction procedures; the
/// interpreter resolves those calls against a registry. Instruction
/// procedures (those with [`exo_ir::Proc::instr`] metadata) carry their
/// semantics in their bodies, so calling them is no different from calling
/// ordinary procedures — except that monitors may charge them differently.
///
/// The registry also memoizes the [`LoweredProc`] of each registered
/// procedure (computed lazily on first call), so the hot instruction
/// procedures of a kernel are lowered once per registration rather than
/// re-traversed on every call. Re-registering a name invalidates its
/// cached lowering.
#[derive(Clone, Debug, Default)]
pub struct ProcRegistry {
    procs: HashMap<String, Proc>,
    lowered: RefCell<HashMap<String, Rc<LoweredProc>>>,
}

impl ProcRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ProcRegistry::default()
    }

    /// Registers a procedure under its own name, replacing any previous
    /// definition with the same name (and dropping that name's cached
    /// lowering, so calls always execute the latest definition).
    pub fn register(&mut self, proc: Proc) -> &mut Self {
        self.lowered.borrow_mut().remove(proc.name());
        self.procs.insert(proc.name().to_string(), proc);
        self
    }

    /// Registers every procedure in the iterator.
    pub fn register_all(&mut self, procs: impl IntoIterator<Item = Proc>) -> &mut Self {
        for p in procs {
            self.register(p);
        }
        self
    }

    /// Looks up a procedure by name.
    pub fn get(&self, name: &str) -> Option<&Proc> {
        self.procs.get(name)
    }

    /// Whether a procedure with this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.procs.contains_key(name)
    }

    /// Number of registered procedures.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Iterates over all registered procedures.
    pub fn iter(&self) -> impl Iterator<Item = &Proc> {
        self.procs.values()
    }

    /// The cached lowering of the procedure registered under `name`,
    /// lowering it now if this is the first request since registration.
    /// Returns `None` for unregistered names.
    pub(crate) fn lowered_for(&self, name: &str) -> Option<Rc<LoweredProc>> {
        if let Some(lp) = self.lowered.borrow().get(name) {
            return Some(lp.clone());
        }
        let proc = self.procs.get(name)?;
        let lp = Rc::new(lower(proc));
        self.lowered
            .borrow_mut()
            .insert(name.to_string(), lp.clone());
        Some(lp)
    }

    /// The cached lowering for a top-level procedure, provided the
    /// identical procedure is registered under its own name (the identity
    /// key: same name *and* structurally equal definition). Lets repeated
    /// `run` calls on a registered kernel skip re-lowering.
    pub(crate) fn lowered_if_registered(&self, proc: &Proc) -> Option<Rc<LoweredProc>> {
        let registered = self.procs.get(proc.name())?;
        if registered != proc {
            return None;
        }
        self.lowered_for(proc.name())
    }
}

impl FromIterator<Proc> for ProcRegistry {
    fn from_iter<T: IntoIterator<Item = Proc>>(iter: T) -> Self {
        let mut r = ProcRegistry::new();
        r.register_all(iter);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_ir::ProcBuilder;

    #[test]
    fn register_and_lookup() {
        let mut r = ProcRegistry::new();
        r.register(ProcBuilder::new("foo").build());
        r.register(ProcBuilder::new("bar").build());
        assert!(r.contains("foo"));
        assert!(!r.contains("baz"));
        assert_eq!(r.len(), 2);
        assert_eq!(r.get("bar").unwrap().name(), "bar");
    }

    #[test]
    fn later_registration_replaces_earlier() {
        let mut r = ProcRegistry::new();
        r.register(ProcBuilder::new("foo").size_arg("n").build());
        r.register(ProcBuilder::new("foo").build());
        assert_eq!(r.get("foo").unwrap().args().len(), 0);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn collects_from_iterator() {
        let r: ProcRegistry = vec![ProcBuilder::new("a").build(), ProcBuilder::new("b").build()]
            .into_iter()
            .collect();
        assert_eq!(r.len(), 2);
        assert_eq!(r.iter().count(), 2);
    }
}
