//! Interpreter errors.

use std::fmt;

/// Errors raised while interpreting object code.
#[derive(Clone, PartialEq, Debug)]
pub enum InterpError {
    /// A symbol was referenced but not bound in the environment.
    Unbound(String),
    /// A buffer access fell outside the buffer's extent.
    OutOfBounds {
        /// Buffer name.
        buf: String,
        /// Offending index vector.
        idx: Vec<i64>,
        /// Buffer dimensions.
        dims: Vec<usize>,
    },
    /// A call referenced a procedure not present in the registry.
    UnknownProc(String),
    /// Argument count or kind mismatch at a call site.
    BadCall(String),
    /// A procedure precondition (assert) failed at run time.
    AssertFailed(String),
    /// Division or modulo by zero in an index expression.
    DivideByZero,
    /// Any other malformed-program condition.
    Malformed(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Unbound(s) => write!(f, "unbound symbol `{s}`"),
            InterpError::OutOfBounds { buf, idx, dims } => {
                write!(
                    f,
                    "index {idx:?} out of bounds for buffer `{buf}` with dims {dims:?}"
                )
            }
            InterpError::UnknownProc(p) => write!(f, "call to unknown procedure `{p}`"),
            InterpError::BadCall(msg) => write!(f, "bad call: {msg}"),
            InterpError::AssertFailed(p) => write!(f, "assertion failed: {p}"),
            InterpError::DivideByZero => write!(f, "division by zero in index expression"),
            InterpError::Malformed(msg) => write!(f, "malformed program: {msg}"),
        }
    }
}

impl std::error::Error for InterpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        let e = InterpError::Unbound("acc".into());
        assert!(e.to_string().contains("acc"));
        let e = InterpError::OutOfBounds {
            buf: "x".into(),
            idx: vec![9],
            dims: vec![4],
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
    }
}
