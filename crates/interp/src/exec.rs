//! The interpreter proper.

use crate::buffer::{ArgValue, BufferData, View, WindowDim};
use crate::error::InterpError;
use crate::monitor::Monitor;
use crate::registry::ProcRegistry;
use crate::Result;
use exo_ir::{ArgKind, BinOp, DataType, Expr, Proc, Stmt, Sym, UnOp, WAccess};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A runtime value.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Value {
    Int(i64),
    Float(f64),
    Bool(bool),
}

impl Value {
    fn as_float(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Float(v) => v,
            Value::Bool(b) => {
                if b {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    fn as_int(self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(v),
            Value::Float(v) if v.fract() == 0.0 => Ok(v as i64),
            other => Err(InterpError::Malformed(format!(
                "expected integer, got {other:?}"
            ))),
        }
    }

    fn as_bool(self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(b),
            Value::Int(v) => Ok(v != 0),
            Value::Float(_) => Err(InterpError::Malformed("expected boolean".into())),
        }
    }
}

#[derive(Clone, Debug)]
enum Binding {
    Scalar(Value),
    Tensor(View),
}

/// Lexically-scoped environment.
struct Env {
    scopes: Vec<HashMap<Sym, Binding>>,
}

impl Env {
    fn new() -> Self {
        Env {
            scopes: vec![HashMap::new()],
        }
    }

    fn push(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.scopes.pop();
    }

    fn bind(&mut self, sym: Sym, b: Binding) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(sym, b);
    }

    fn lookup(&self, sym: &Sym) -> Option<&Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(sym))
    }
}

/// Executes object-language procedures against concrete buffers, reporting
/// events to a [`Monitor`].
pub struct Interpreter<'a> {
    registry: &'a ProcRegistry,
    configs: HashMap<(String, String), f64>,
    next_addr: u64,
    suppress: usize,
}

impl<'a> Interpreter<'a> {
    /// Creates an interpreter resolving calls against `registry`.
    pub fn new(registry: &'a ProcRegistry) -> Self {
        Interpreter {
            registry,
            configs: HashMap::new(),
            next_addr: 0x1000,
            suppress: 0,
        }
    }

    /// Runs `proc` with the given arguments, reporting events to `monitor`.
    ///
    /// # Errors
    /// Returns an [`InterpError`] for unbound symbols, out-of-bounds
    /// accesses, failed assertions, bad calls and unknown procedures.
    pub fn run(
        &mut self,
        proc: &Proc,
        args: Vec<ArgValue>,
        monitor: &mut dyn Monitor,
    ) -> Result<()> {
        if args.len() != proc.args().len() {
            return Err(InterpError::BadCall(format!(
                "procedure `{}` expects {} arguments, got {}",
                proc.name(),
                proc.args().len(),
                args.len()
            )));
        }
        let mut env = Env::new();
        for (arg, value) in proc.args().iter().zip(args) {
            let binding = self.bind_arg(&arg.kind, value, arg.name.name())?;
            env.bind(arg.name.clone(), binding);
        }
        // Check assertion preconditions.
        for pred in proc.preds() {
            let v = self.eval(pred, &env, monitor)?;
            if !v.as_bool()? {
                return Err(InterpError::AssertFailed(pred.to_string()));
            }
        }
        self.exec_block(&proc.body().0, &mut env, monitor)
    }

    /// Read access to the accumulated configuration-register state
    /// (useful for Gemmini tests).
    pub fn config(&self, config: &str, field: &str) -> Option<f64> {
        self.configs
            .get(&(config.to_string(), field.to_string()))
            .copied()
    }

    fn bind_arg(&mut self, kind: &ArgKind, value: ArgValue, name: &str) -> Result<Binding> {
        match (kind, value) {
            (ArgKind::Size, ArgValue::Int(v)) => Ok(Binding::Scalar(Value::Int(v))),
            (ArgKind::Scalar { ty }, ArgValue::Float(v)) => {
                let _ = ty;
                Ok(Binding::Scalar(Value::Float(v)))
            }
            (ArgKind::Scalar { .. }, ArgValue::Int(v)) => Ok(Binding::Scalar(Value::Int(v))),
            (ArgKind::Scalar { .. }, ArgValue::Bool(b)) => Ok(Binding::Scalar(Value::Bool(b))),
            (ArgKind::Tensor { .. }, ArgValue::Buffer(buf)) => {
                self.ensure_addr(&buf);
                Ok(Binding::Tensor(View::full(buf)))
            }
            (ArgKind::Tensor { .. }, ArgValue::View(view)) => {
                self.ensure_addr(&view.buf);
                Ok(Binding::Tensor(view))
            }
            (kind, value) => Err(InterpError::BadCall(format!(
                "argument `{name}` of kind {kind:?} cannot be bound to {value:?}"
            ))),
        }
    }

    fn ensure_addr(&mut self, buf: &Rc<RefCell<BufferData>>) {
        let mut b = buf.borrow_mut();
        if b.base_addr == 0 {
            b.base_addr = self.next_addr;
            let bytes = (b.len() as u64 * b.elem_bytes()).max(64);
            self.next_addr += bytes.div_ceil(64) * 64;
        }
    }

    fn exec_block(
        &mut self,
        stmts: &[Stmt],
        env: &mut Env,
        monitor: &mut dyn Monitor,
    ) -> Result<()> {
        env.push();
        let result = (|| {
            for s in stmts {
                self.exec_stmt(s, env, monitor)?;
            }
            Ok(())
        })();
        env.pop();
        result
    }

    fn exec_stmt(&mut self, stmt: &Stmt, env: &mut Env, monitor: &mut dyn Monitor) -> Result<()> {
        if self.suppress == 0 {
            monitor.on_stmt();
        }
        match stmt {
            Stmt::Assign { buf, idx, rhs } => {
                let value = self.eval(rhs, env, monitor)?.as_float();
                self.store(buf, idx, value, env, monitor)
            }
            Stmt::Reduce { buf, idx, rhs } => {
                let add = self.eval(rhs, env, monitor)?.as_float();
                let old = self.load(buf, idx, env, monitor)?;
                if self.suppress == 0 {
                    monitor.on_scalar_op(BinOp::Add, DataType::F64);
                }
                self.store(buf, idx, old + add, env, monitor)
            }
            Stmt::Alloc {
                name,
                ty,
                dims,
                mem,
            } => {
                let mut sizes = Vec::with_capacity(dims.len());
                for d in dims {
                    let v = self.eval(d, env, monitor)?.as_int()?;
                    if v < 0 {
                        return Err(InterpError::Malformed(format!(
                            "negative allocation size for `{name}`"
                        )));
                    }
                    sizes.push(v as usize);
                }
                let mut data = BufferData::zeros(sizes, *ty, mem.clone());
                data.base_addr = self.next_addr;
                let bytes = (data.len() as u64 * data.elem_bytes()).max(64);
                self.next_addr += bytes.div_ceil(64) * 64;
                env.bind(
                    name.clone(),
                    Binding::Tensor(View::full(Rc::new(RefCell::new(data)))),
                );
                Ok(())
            }
            Stmt::For {
                iter,
                lo,
                hi,
                body,
                parallel,
            } => {
                let lo = self.eval(lo, env, monitor)?.as_int()?;
                let hi = self.eval(hi, env, monitor)?.as_int()?;
                for i in lo..hi {
                    if self.suppress == 0 {
                        monitor.on_loop_iter(*parallel);
                    }
                    env.push();
                    env.bind(iter.clone(), Binding::Scalar(Value::Int(i)));
                    let r = self.exec_block(&body.0, env, monitor);
                    env.pop();
                    r?;
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if self.suppress == 0 {
                    monitor.on_branch();
                }
                let c = self.eval(cond, env, monitor)?.as_bool()?;
                if c {
                    self.exec_block(&then_body.0, env, monitor)
                } else {
                    self.exec_block(&else_body.0, env, monitor)
                }
            }
            Stmt::Call { proc, args } => self.exec_call(proc, args, env, monitor),
            Stmt::Pass => Ok(()),
            Stmt::WriteConfig {
                config,
                field,
                value,
            } => {
                let v = self.eval(value, env, monitor)?.as_float();
                if self.suppress == 0 {
                    monitor.on_config_write(config.name(), field);
                }
                self.configs
                    .insert((config.name().to_string(), field.clone()), v);
                Ok(())
            }
            Stmt::WindowStmt { name, rhs } => {
                let view = self.eval_window(rhs, env, monitor)?;
                env.bind(name.clone(), Binding::Tensor(view));
                Ok(())
            }
        }
    }

    fn exec_call(
        &mut self,
        name: &str,
        args: &[Expr],
        env: &mut Env,
        monitor: &mut dyn Monitor,
    ) -> Result<()> {
        let callee = self
            .registry
            .get(name)
            .ok_or_else(|| InterpError::UnknownProc(name.to_string()))?
            .clone();
        if args.len() != callee.args().len() {
            return Err(InterpError::BadCall(format!(
                "call to `{name}` passes {} arguments, expected {}",
                args.len(),
                callee.args().len()
            )));
        }
        let suppress_inner = if self.suppress == 0 {
            monitor.enter_call(&callee)
        } else {
            false
        };
        if suppress_inner {
            self.suppress += 1;
        }
        let mut callee_env = Env::new();
        let result = (|| {
            for (arg, expr) in callee.args().iter().zip(args) {
                let binding = match &arg.kind {
                    ArgKind::Size | ArgKind::Scalar { .. } => {
                        // Scalar arguments may also be passed 0-dim buffers
                        // by reference (Gemmini's acc_scale / clamp idiom).
                        match self.expr_as_view(expr, env) {
                            Some(view) if matches!(arg.kind, ArgKind::Scalar { .. }) => {
                                Binding::Tensor(view)
                            }
                            _ => Binding::Scalar(self.eval(expr, env, monitor)?),
                        }
                    }
                    ArgKind::Tensor { .. } => {
                        let view = self.eval_window(expr, env, monitor)?;
                        Binding::Tensor(view)
                    }
                };
                callee_env.bind(arg.name.clone(), binding);
            }
            for pred in callee.preds() {
                let v = self.eval(pred, &callee_env, monitor)?;
                if !v.as_bool()? {
                    return Err(InterpError::AssertFailed(format!(
                        "in call to `{name}`: {pred}"
                    )));
                }
            }
            self.exec_block(&callee.body().0, &mut callee_env, monitor)
        })();
        if suppress_inner {
            self.suppress -= 1;
        }
        if self.suppress == 0 {
            monitor.exit_call(&callee);
        }
        result
    }

    /// Resolves an argument expression that names a whole tensor, if it
    /// does (used for by-reference scalar buffers).
    fn expr_as_view(&self, expr: &Expr, env: &Env) -> Option<View> {
        match expr {
            Expr::Var(s) | Expr::Read { buf: s, idx: _ } if matches!(expr, Expr::Var(_)) => {
                match env.lookup(s) {
                    Some(Binding::Tensor(v)) => Some(v.clone()),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Evaluates an expression used as a tensor argument: a bare buffer
    /// name, or a window expression.
    fn eval_window(&mut self, expr: &Expr, env: &Env, monitor: &mut dyn Monitor) -> Result<View> {
        match expr {
            Expr::Var(s) => match env.lookup(s) {
                Some(Binding::Tensor(v)) => Ok(v.clone()),
                _ => Err(InterpError::Unbound(s.name().to_string())),
            },
            Expr::Read { buf, idx } if !idx.is_empty() => {
                // A point access used where a window is expected: a 0-dim view.
                let view = match env.lookup(buf) {
                    Some(Binding::Tensor(v)) => v.clone(),
                    _ => return Err(InterpError::Unbound(buf.name().to_string())),
                };
                let mut spec = Vec::new();
                for e in idx {
                    spec.push(WindowDim::Point(self.eval(e, env, monitor)?.as_int()?));
                }
                Ok(view.narrow(&spec))
            }
            Expr::Window { buf, idx } => {
                let view = match env.lookup(buf) {
                    Some(Binding::Tensor(v)) => v.clone(),
                    _ => return Err(InterpError::Unbound(buf.name().to_string())),
                };
                let mut spec = Vec::new();
                for w in idx {
                    match w {
                        WAccess::Point(e) => {
                            spec.push(WindowDim::Point(self.eval(e, env, monitor)?.as_int()?))
                        }
                        WAccess::Interval(lo, _hi) => {
                            spec.push(WindowDim::Interval(self.eval(lo, env, monitor)?.as_int()?))
                        }
                    }
                }
                Ok(view.narrow(&spec))
            }
            other => Err(InterpError::BadCall(format!(
                "expression `{other}` cannot be passed as a tensor argument"
            ))),
        }
    }

    fn load(
        &mut self,
        buf: &Sym,
        idx: &[Expr],
        env: &Env,
        monitor: &mut dyn Monitor,
    ) -> Result<f64> {
        let mut indices = Vec::with_capacity(idx.len());
        for e in idx {
            indices.push(self.eval(e, env, monitor)?.as_int()?);
        }
        let view = match env.lookup(buf) {
            Some(Binding::Tensor(v)) => v.clone(),
            Some(Binding::Scalar(v)) if idx.is_empty() => return Ok(v.as_float()),
            _ => return Err(InterpError::Unbound(buf.name().to_string())),
        };
        let value = view
            .read(&indices)
            .ok_or_else(|| InterpError::OutOfBounds {
                buf: buf.name().to_string(),
                idx: indices.clone(),
                dims: view.buf.borrow().dims.clone(),
            })?;
        if self.suppress == 0 {
            if let Some(addr) = view.byte_addr(&indices) {
                monitor.on_read(&view.mem(), addr, view.elem().size_bytes());
            }
        }
        Ok(value)
    }

    fn store(
        &mut self,
        buf: &Sym,
        idx: &[Expr],
        value: f64,
        env: &Env,
        monitor: &mut dyn Monitor,
    ) -> Result<()> {
        let mut indices = Vec::with_capacity(idx.len());
        for e in idx {
            indices.push(self.eval(e, env, monitor)?.as_int()?);
        }
        let view = match env.lookup(buf) {
            Some(Binding::Tensor(v)) => v.clone(),
            _ => return Err(InterpError::Unbound(buf.name().to_string())),
        };
        if self.suppress == 0 {
            if let Some(addr) = view.byte_addr(&indices) {
                monitor.on_write(&view.mem(), addr, view.elem().size_bytes());
            }
        }
        view.write(&indices, value)
            .ok_or_else(|| InterpError::OutOfBounds {
                buf: buf.name().to_string(),
                idx: indices,
                dims: view.buf.borrow().dims.clone(),
            })
    }

    fn eval(&mut self, expr: &Expr, env: &Env, monitor: &mut dyn Monitor) -> Result<Value> {
        match expr {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Float(v) => Ok(Value::Float(*v)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Var(s) => match env.lookup(s) {
                Some(Binding::Scalar(v)) => Ok(*v),
                Some(Binding::Tensor(view))
                    if view.kept.is_empty() || view.buf.borrow().dims.is_empty() =>
                {
                    let view = view.clone();
                    let value = view
                        .read(&[])
                        .ok_or_else(|| InterpError::Unbound(s.name().to_string()))?;
                    if self.suppress == 0 {
                        if let Some(addr) = view.byte_addr(&[]) {
                            monitor.on_read(&view.mem(), addr, view.elem().size_bytes());
                        }
                    }
                    Ok(Value::Float(value))
                }
                Some(Binding::Tensor(_)) => Err(InterpError::Malformed(format!(
                    "tensor `{s}` used in a scalar context"
                ))),
                None => Err(InterpError::Unbound(s.name().to_string())),
            },
            Expr::Read { buf, idx } => {
                let v = self.load(buf, idx, env, monitor)?;
                Ok(Value::Float(v))
            }
            Expr::Window { .. } => Err(InterpError::Malformed(
                "window expression used in a scalar context".into(),
            )),
            Expr::Bin { op, lhs, rhs } => {
                let l = self.eval(lhs, env, monitor)?;
                let r = self.eval(rhs, env, monitor)?;
                self.eval_bin(*op, l, r, monitor)
            }
            Expr::Un { op, arg } => {
                let v = self.eval(arg, env, monitor)?;
                match op {
                    UnOp::Neg => Ok(match v {
                        Value::Int(i) => Value::Int(-i),
                        Value::Float(f) => Value::Float(-f),
                        Value::Bool(_) => {
                            return Err(InterpError::Malformed("negating a boolean".into()))
                        }
                    }),
                    UnOp::Not => Ok(Value::Bool(!v.as_bool()?)),
                }
            }
            Expr::Stride { buf, dim } => {
                let view = match env.lookup(buf) {
                    Some(Binding::Tensor(v)) => v.clone(),
                    _ => return Err(InterpError::Unbound(buf.name().to_string())),
                };
                let dims = view.buf.borrow().dims.clone();
                let stride: usize = dims.iter().skip(dim + 1).product();
                Ok(Value::Int(stride.max(1) as i64))
            }
            Expr::ReadConfig { config, field } => {
                let v = self
                    .configs
                    .get(&(config.name().to_string(), field.clone()))
                    .copied()
                    .unwrap_or(0.0);
                Ok(Value::Float(v))
            }
        }
    }

    fn eval_bin(
        &mut self,
        op: BinOp,
        l: Value,
        r: Value,
        monitor: &mut dyn Monitor,
    ) -> Result<Value> {
        use BinOp::*;
        // Integer arithmetic when both sides are integers (index math).
        if let (Value::Int(a), Value::Int(b)) = (l, r) {
            return Ok(match op {
                Add => Value::Int(a + b),
                Sub => Value::Int(a - b),
                Mul => Value::Int(a * b),
                Div => {
                    if b == 0 {
                        return Err(InterpError::DivideByZero);
                    }
                    Value::Int(a.div_euclid(b))
                }
                Mod => {
                    if b == 0 {
                        return Err(InterpError::DivideByZero);
                    }
                    Value::Int(a.rem_euclid(b))
                }
                Lt => Value::Bool(a < b),
                Le => Value::Bool(a <= b),
                Gt => Value::Bool(a > b),
                Ge => Value::Bool(a >= b),
                Eq => Value::Bool(a == b),
                Ne => Value::Bool(a != b),
                And => Value::Bool(a != 0 && b != 0),
                Or => Value::Bool(a != 0 || b != 0),
            });
        }
        if let (Value::Bool(a), Value::Bool(b)) = (l, r) {
            return Ok(match op {
                And => Value::Bool(a && b),
                Or => Value::Bool(a || b),
                Eq => Value::Bool(a == b),
                Ne => Value::Bool(a != b),
                _ => return Err(InterpError::Malformed("arithmetic on booleans".into())),
            });
        }
        // Floating-point arithmetic: count it as compute.
        let a = l.as_float();
        let b = r.as_float();
        if matches!(op, Add | Sub | Mul | Div) && self.suppress == 0 {
            monitor.on_scalar_op(op, DataType::F64);
        }
        Ok(match op {
            Add => Value::Float(a + b),
            Sub => Value::Float(a - b),
            Mul => Value::Float(a * b),
            Div => Value::Float(a / b),
            Mod => Value::Float(a.rem_euclid(b)),
            Lt => Value::Bool(a < b),
            Le => Value::Bool(a <= b),
            Gt => Value::Bool(a > b),
            Ge => Value::Bool(a >= b),
            Eq => Value::Bool(a == b),
            Ne => Value::Bool(a != b),
            And | Or => return Err(InterpError::Malformed("logical op on floats".into())),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{CountingMonitor, NullMonitor};
    use exo_ir::{fb, ib, read, var, Mem, ProcBuilder};

    fn gemv_proc() -> Proc {
        ProcBuilder::new("gemv")
            .size_arg("M")
            .size_arg("N")
            .tensor_arg("A", DataType::F32, vec![var("M"), var("N")], Mem::Dram)
            .tensor_arg("x", DataType::F32, vec![var("N")], Mem::Dram)
            .tensor_arg("y", DataType::F32, vec![var("M")], Mem::Dram)
            .for_("i", ib(0), var("M"), |b| {
                b.for_("j", ib(0), var("N"), |b| {
                    let rhs = read("A", vec![var("i"), var("j")]) * read("x", vec![var("j")]);
                    b.reduce("y", vec![var("i")], rhs);
                });
            })
            .build()
    }

    #[test]
    fn gemv_computes_matrix_vector_product() {
        let registry = ProcRegistry::new();
        let mut interp = Interpreter::new(&registry);
        let (m, n) = (3usize, 4usize);
        let a: Vec<f64> = (0..m * n).map(|v| v as f64).collect();
        let x: Vec<f64> = (0..n).map(|v| (v + 1) as f64).collect();
        let (_, a_arg) = ArgValue::from_vec(a.clone(), vec![m, n], DataType::F32);
        let (_, x_arg) = ArgValue::from_vec(x.clone(), vec![n], DataType::F32);
        let (y_buf, y_arg) = ArgValue::zeros(vec![m], DataType::F32);
        interp
            .run(
                &gemv_proc(),
                vec![
                    ArgValue::Int(m as i64),
                    ArgValue::Int(n as i64),
                    a_arg,
                    x_arg,
                    y_arg,
                ],
                &mut NullMonitor,
            )
            .unwrap();
        let y = y_buf.borrow().data.clone();
        for i in 0..m {
            let expect: f64 = (0..n).map(|j| a[i * n + j] * x[j]).sum();
            assert!(
                (y[i] - expect).abs() < 1e-9,
                "row {i}: {} vs {expect}",
                y[i]
            );
        }
    }

    #[test]
    fn monitor_counts_flops_and_memory_traffic() {
        let registry = ProcRegistry::new();
        let mut interp = Interpreter::new(&registry);
        let (m, n) = (2usize, 8usize);
        let (_, a_arg) = ArgValue::from_vec(vec![1.0; m * n], vec![m, n], DataType::F32);
        let (_, x_arg) = ArgValue::from_vec(vec![1.0; n], vec![n], DataType::F32);
        let (_, y_arg) = ArgValue::zeros(vec![m], DataType::F32);
        let mut mon = CountingMonitor::default();
        interp
            .run(
                &gemv_proc(),
                vec![
                    ArgValue::Int(m as i64),
                    ArgValue::Int(n as i64),
                    a_arg,
                    x_arg,
                    y_arg,
                ],
                &mut mon,
            )
            .unwrap();
        // One multiply and one add per inner iteration.
        assert_eq!(mon.scalar_ops, (m * n * 2) as u64);
        assert_eq!(mon.loop_iters, (m + m * n) as u64);
        assert_eq!(mon.writes, (m * n) as u64);
        assert!(mon.reads >= (3 * m * n) as u64);
    }

    #[test]
    fn assertion_failures_are_reported() {
        let p = ProcBuilder::new("p")
            .size_arg("n")
            .assert_(Expr::eq_(Expr::modulo(var("n"), ib(8)), ib(0)))
            .build();
        let registry = ProcRegistry::new();
        let mut interp = Interpreter::new(&registry);
        assert!(matches!(
            interp.run(&p, vec![ArgValue::Int(12)], &mut NullMonitor),
            Err(InterpError::AssertFailed(_))
        ));
        assert!(interp
            .run(&p, vec![ArgValue::Int(16)], &mut NullMonitor)
            .is_ok());
    }

    #[test]
    fn out_of_bounds_accesses_error() {
        let p = ProcBuilder::new("p")
            .size_arg("n")
            .tensor_arg("x", DataType::F32, vec![var("n")], Mem::Dram)
            .for_("i", ib(0), var("n") + ib(1), |b| {
                b.assign("x", vec![var("i")], fb(1.0));
            })
            .build();
        let registry = ProcRegistry::new();
        let mut interp = Interpreter::new(&registry);
        let (_, x_arg) = ArgValue::zeros(vec![4], DataType::F32);
        assert!(matches!(
            interp.run(&p, vec![ArgValue::Int(4), x_arg], &mut NullMonitor),
            Err(InterpError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn calls_execute_instruction_bodies_through_windows() {
        // An 8-lane vector load instruction: dst[0:8] = src[0:8].
        let loadu = ProcBuilder::new("vec_load8")
            .window_arg("dst", DataType::F32, vec![ib(8)], Mem::VecAvx2)
            .window_arg("src", DataType::F32, vec![ib(8)], Mem::Dram)
            .instr("avx2_load", "load")
            .with_body(|b| {
                b.for_("l", ib(0), ib(8), |b| {
                    b.assign("dst", vec![var("l")], b.read("src", vec![var("l")]));
                });
            })
            .build();
        let caller = ProcBuilder::new("caller")
            .tensor_arg("x", DataType::F32, vec![ib(16)], Mem::Dram)
            .tensor_arg("out", DataType::F32, vec![ib(16)], Mem::Dram)
            .with_body(|b| {
                b.call(
                    "vec_load8",
                    vec![
                        Expr::Window {
                            buf: Sym::new("out"),
                            idx: vec![WAccess::Interval(ib(8), ib(16))],
                        },
                        Expr::Window {
                            buf: Sym::new("x"),
                            idx: vec![WAccess::Interval(ib(0), ib(8))],
                        },
                    ],
                );
            })
            .build();
        let mut registry = ProcRegistry::new();
        registry.register(loadu);
        let mut interp = Interpreter::new(&registry);
        let (_, x_arg) =
            ArgValue::from_vec((0..16).map(|v| v as f64).collect(), vec![16], DataType::F32);
        let (out_buf, out_arg) = ArgValue::zeros(vec![16], DataType::F32);
        interp
            .run(&caller, vec![x_arg, out_arg], &mut NullMonitor)
            .unwrap();
        let out = out_buf.borrow().data.clone();
        assert_eq!(&out[8..16], &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert!(out[..8].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn unknown_procedures_error() {
        let caller = ProcBuilder::new("caller")
            .with_body(|b| {
                b.call("missing", vec![]);
            })
            .build();
        let registry = ProcRegistry::new();
        let mut interp = Interpreter::new(&registry);
        assert!(matches!(
            interp.run(&caller, vec![], &mut NullMonitor),
            Err(InterpError::UnknownProc(_))
        ));
    }

    #[test]
    fn config_writes_are_visible_and_counted() {
        let p = ProcBuilder::new("p")
            .with_body(|b| {
                b.write_config("cfg", "stride", ib(4));
            })
            .build();
        let registry = ProcRegistry::new();
        let mut interp = Interpreter::new(&registry);
        let mut mon = CountingMonitor::default();
        interp.run(&p, vec![], &mut mon).unwrap();
        assert_eq!(interp.config("cfg", "stride"), Some(4.0));
        assert_eq!(mon.config_writes, 1);
    }

    #[test]
    fn scalar_zero_dim_buffers_passed_by_reference() {
        // callee: out = in * 2 where out/in are 0-dim tensors.
        let callee = ProcBuilder::new("double")
            .tensor_arg("src", DataType::F32, vec![], Mem::Dram)
            .tensor_arg("dst", DataType::F32, vec![], Mem::Dram)
            .with_body(|b| {
                b.assign("dst", vec![], b.read("src", vec![]) * fb(2.0));
            })
            .build();
        let caller = ProcBuilder::new("caller")
            .tensor_arg("out", DataType::F32, vec![ib(1)], Mem::Dram)
            .with_body(|b| {
                b.alloc("tmp", DataType::F32, vec![], Mem::Dram);
                b.assign("tmp", vec![], fb(21.0));
                b.call("double", vec![var("tmp"), var("tmp")]);
                b.assign("out", vec![ib(0)], b.read("tmp", vec![]));
            })
            .build();
        let mut registry = ProcRegistry::new();
        registry.register(callee);
        let mut interp = Interpreter::new(&registry);
        let (out_buf, out_arg) = ArgValue::zeros(vec![1], DataType::F32);
        interp
            .run(&caller, vec![out_arg], &mut NullMonitor)
            .unwrap();
        assert_eq!(out_buf.borrow().data[0], 42.0);
    }

    #[test]
    fn loop_scoping_shadows_outer_bindings() {
        // Allocation inside a loop body is fresh each iteration.
        let p = ProcBuilder::new("p")
            .tensor_arg("out", DataType::F32, vec![ib(4)], Mem::Dram)
            .for_("i", ib(0), ib(4), |b| {
                b.alloc("t", DataType::F32, vec![], Mem::Dram);
                b.reduce("t", vec![], fb(1.0));
                b.assign("out", vec![var("i")], b.read("t", vec![]));
            })
            .build();
        let registry = ProcRegistry::new();
        let mut interp = Interpreter::new(&registry);
        let (out_buf, out_arg) = ArgValue::zeros(vec![4], DataType::F32);
        interp.run(&p, vec![out_arg], &mut NullMonitor).unwrap();
        assert_eq!(out_buf.borrow().data, vec![1.0; 4]);
    }

    #[test]
    fn stride_expression_reflects_row_major_layout() {
        let p = ProcBuilder::new("p")
            .tensor_arg("A", DataType::F32, vec![ib(3), ib(5)], Mem::Dram)
            .tensor_arg("out", DataType::F32, vec![ib(1)], Mem::Dram)
            .with_body(|b| {
                b.assign(
                    "out",
                    vec![ib(0)],
                    Expr::Stride {
                        buf: Sym::new("A"),
                        dim: 0,
                    },
                );
            })
            .build();
        let registry = ProcRegistry::new();
        let mut interp = Interpreter::new(&registry);
        let (_, a_arg) = ArgValue::zeros(vec![3, 5], DataType::F32);
        let (out_buf, out_arg) = ArgValue::zeros(vec![1], DataType::F32);
        interp
            .run(&p, vec![a_arg, out_arg], &mut NullMonitor)
            .unwrap();
        assert_eq!(out_buf.borrow().data[0], 5.0);
    }
}
