//! The interpreter proper.
//!
//! Two execution paths share one set of value/binding types:
//!
//! * [`Interpreter::run`] — the default, **lowered** path: the procedure
//!   is first flattened by [`crate::lower::lower`] into a slot-indexed
//!   instruction vector, then executed against dense `Vec`-backed frames
//!   (no hashing, no `Sym` cloning, no reverse scope scans, no callee AST
//!   clones). Lowered callees are cached inside the [`ProcRegistry`].
//! * [`Interpreter::run_reference`] — the original tree-walking path with
//!   a `HashMap`-scoped environment, kept as the semantic baseline for
//!   differential tests and the `interp_bench` old-vs-new comparison.
//!
//! Both paths are observationally identical: same buffer contents, same
//! [`Monitor`] event sequence, same errors.

use crate::buffer::{AccessPlan, ArgValue, BufferData, View, WindowDim};
use crate::error::InterpError;
use crate::lower::{
    lower, LBufRef, LCallArg, LExpr, LInst, LParamKind, LWSpec, LWindow, LoweredProc,
};
use crate::monitor::Monitor;
use crate::registry::ProcRegistry;
use crate::Result;
use exo_ir::{ArgKind, BinOp, DataType, Expr, Proc, Stmt, Sym, UnOp, WAccess};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A runtime value.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Value {
    Int(i64),
    Float(f64),
    Bool(bool),
}

impl Value {
    fn as_float(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Float(v) => v,
            Value::Bool(b) => {
                if b {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    fn as_int(self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(v),
            // Accept only floats that are exactly representable as i64:
            // integral, and strictly inside [-2^63, 2^63). Huge values
            // would otherwise saturate in `as i64` and silently corrupt
            // index arithmetic.
            Value::Float(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v < i64::MAX as f64 => {
                Ok(v as i64)
            }
            other => Err(InterpError::Malformed(format!(
                "expected integer, got {other:?}"
            ))),
        }
    }

    fn as_bool(self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(b),
            // The IR never produces an integer in boolean position: all
            // predicates are comparisons or logical operators, which the
            // evaluator already folds to `Bool`. Coercing `Int != 0` here
            // would only mask malformed programs, so reject it.
            other => Err(InterpError::Malformed(format!(
                "expected boolean, got {other:?}"
            ))),
        }
    }
}

/// A tensor binding: the view plus its precomputed dense access plan
/// (`None` when the plan cannot be proven safe; accesses then take the
/// fully-checked slow path).
#[derive(Clone, Debug)]
struct TensorBind {
    view: View,
    plan: Option<AccessPlan>,
}

impl TensorBind {
    /// Binds a view with a precomputed stride plan (lowered path).
    fn planned(view: View) -> Self {
        let plan = view.plan();
        TensorBind { view, plan }
    }

    /// Binds a view without a plan (reference path: every access goes
    /// through the original checked translation).
    fn unplanned(view: View) -> Self {
        TensorBind { view, plan: None }
    }
}

#[derive(Clone, Debug)]
enum Binding {
    Scalar(Value),
    Tensor(TensorBind),
}

/// One dense activation record of the lowered executor.
type Frame = Vec<Option<Binding>>;

/// Tensor ranks up to this size evaluate their index vectors in stack
/// storage on the hot access path; higher ranks (unseen in practice)
/// fall back to a heap vector.
const MAX_INLINE_RANK: usize = 8;

/// Lexically-scoped environment (reference path only).
struct Env {
    scopes: Vec<HashMap<Sym, Binding>>,
}

impl Env {
    fn new() -> Self {
        Env {
            scopes: vec![HashMap::new()],
        }
    }

    fn push(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.scopes.pop();
    }

    fn bind(&mut self, sym: Sym, b: Binding) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(sym, b);
    }

    fn lookup(&self, sym: &Sym) -> Option<&Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(sym))
    }
}

/// Per-instruction-class execution counts from the slot executor — the
/// profiling view the RISC-simulator-style accounting wants. Opt-in via
/// [`Interpreter::enable_profile`]: while disabled (the default) the hot
/// loop pays only a `None` check per instruction, no counting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InstProfile {
    counts: [u64; InstProfile::CLASSES],
}

impl InstProfile {
    const CLASSES: usize = 11;
    const NAMES: [&'static str; InstProfile::CLASSES] = [
        "assign",
        "reduce",
        "alloc",
        "loop",
        "end-loop",
        "branch",
        "jump",
        "call",
        "pass",
        "write-config",
        "window-bind",
    ];

    fn class_of(inst: &LInst) -> usize {
        match inst {
            LInst::Assign { .. } => 0,
            LInst::Reduce { .. } => 1,
            LInst::Alloc { .. } => 2,
            LInst::Loop { .. } => 3,
            LInst::EndLoop { .. } => 4,
            LInst::Branch { .. } => 5,
            LInst::Jump { .. } => 6,
            LInst::Call { .. } => 7,
            LInst::Pass => 8,
            LInst::WriteConfig { .. } => 9,
            LInst::WindowBind { .. } => 10,
        }
    }

    #[inline]
    fn bump(&mut self, inst: &LInst) {
        self.counts[InstProfile::class_of(inst)] += 1;
    }

    /// The count for one instruction class (stable lower-case name,
    /// e.g. `"assign"`, `"end-loop"`); 0 for unknown names.
    pub fn count(&self, class: &str) -> u64 {
        InstProfile::NAMES
            .iter()
            .position(|&n| n == class)
            .map_or(0, |i| self.counts[i])
    }

    /// Total instructions executed.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates `(class name, count)` pairs in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        InstProfile::NAMES.iter().copied().zip(self.counts)
    }
}

/// Executes object-language procedures against concrete buffers, reporting
/// events to a [`Monitor`].
pub struct Interpreter<'a> {
    registry: &'a ProcRegistry,
    configs: HashMap<(String, String), f64>,
    next_addr: u64,
    suppress: usize,
    /// Monotone counter issuing a unique token per loop-statement
    /// execution, reported via `Monitor::on_loop_enter`.
    loop_seq: u64,
    frame_pool: Vec<Frame>,
    /// Opt-in per-instruction-class counters; `None` keeps the counting
    /// branch off the hot loop.
    profile: Option<Box<InstProfile>>,
}

impl<'a> Interpreter<'a> {
    /// Creates an interpreter resolving calls against `registry`.
    pub fn new(registry: &'a ProcRegistry) -> Self {
        Interpreter {
            registry,
            configs: HashMap::new(),
            next_addr: 0x1000,
            suppress: 0,
            loop_seq: 0,
            frame_pool: Vec::new(),
            profile: None,
        }
    }

    /// Turns on per-instruction-class counting (keeps any counts already
    /// accumulated by an earlier enable).
    pub fn enable_profile(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(Box::default());
        }
    }

    /// Takes the accumulated instruction profile, turning counting back
    /// off. `None` if profiling was never enabled.
    pub fn take_profile(&mut self) -> Option<Box<InstProfile>> {
        self.profile.take()
    }

    /// Runs `proc` with the given arguments, reporting events to `monitor`.
    ///
    /// The procedure is lowered to a slot-indexed instruction vector first
    /// (reusing the registry's cached lowering when `proc` is registered
    /// under its own name), then executed by the dense-frame executor.
    ///
    /// # Errors
    /// Returns an [`InterpError`] for unbound symbols, out-of-bounds
    /// accesses, failed assertions, bad calls and unknown procedures.
    pub fn run(
        &mut self,
        proc: &Proc,
        args: Vec<ArgValue>,
        monitor: &mut dyn Monitor,
    ) -> Result<()> {
        let _span = exo_obs::span!("interp:run", "{}", proc.name());
        if args.len() != proc.args().len() {
            return Err(InterpError::BadCall(format!(
                "procedure `{}` expects {} arguments, got {}",
                proc.name(),
                proc.args().len(),
                args.len()
            )));
        }
        let lowered = match self.registry.lowered_if_registered(proc) {
            Some(lp) => lp,
            None => Rc::new(lower(proc)),
        };
        let mut frame: Frame = vec![None; lowered.frame_size];
        for ((arg, value), larg) in proc.args().iter().zip(args).zip(&lowered.args) {
            let binding = self.bind_arg(&arg.kind, value, arg.name.name())?;
            frame[larg.slot as usize] = Some(binding);
        }
        // Check assertion preconditions.
        for (pred, pred_str) in &lowered.preds {
            let v = self.eval_l(&lowered, pred, &frame, monitor)?;
            if !v.as_bool()? {
                return Err(InterpError::AssertFailed(pred_str.clone()));
            }
        }
        self.exec_lowered(&lowered, &mut frame, monitor)
    }

    /// Read access to the accumulated configuration-register state
    /// (useful for Gemmini tests).
    pub fn config(&self, config: &str, field: &str) -> Option<f64> {
        self.configs
            .get(&(config.to_string(), field.to_string()))
            .copied()
    }

    fn bind_arg(&mut self, kind: &ArgKind, value: ArgValue, name: &str) -> Result<Binding> {
        match (kind, value) {
            (ArgKind::Size, ArgValue::Int(v)) => Ok(Binding::Scalar(Value::Int(v))),
            (ArgKind::Scalar { ty }, ArgValue::Float(v)) => {
                let _ = ty;
                Ok(Binding::Scalar(Value::Float(v)))
            }
            (ArgKind::Scalar { .. }, ArgValue::Int(v)) => Ok(Binding::Scalar(Value::Int(v))),
            (ArgKind::Scalar { .. }, ArgValue::Bool(b)) => Ok(Binding::Scalar(Value::Bool(b))),
            (ArgKind::Tensor { .. }, ArgValue::Buffer(buf)) => {
                self.ensure_addr(&buf);
                Ok(Binding::Tensor(TensorBind::planned(View::full(buf))))
            }
            (ArgKind::Tensor { .. }, ArgValue::View(view)) => {
                self.ensure_addr(&view.buf);
                Ok(Binding::Tensor(TensorBind::planned(view)))
            }
            (kind, value) => Err(InterpError::BadCall(format!(
                "argument `{name}` of kind {kind:?} cannot be bound to {value:?}"
            ))),
        }
    }

    fn ensure_addr(&mut self, buf: &Rc<RefCell<BufferData>>) {
        let mut b = buf.borrow_mut();
        if b.base_addr == 0 {
            b.base_addr = self.next_addr;
            let bytes = (b.len() as u64 * b.elem_bytes()).max(64);
            self.next_addr += bytes.div_ceil(64) * 64;
        }
    }

    fn alloc_buffer(&mut self, sizes: Vec<usize>, ty: DataType, mem: exo_ir::Mem) -> View {
        let mut data = BufferData::zeros(sizes, ty, mem);
        data.base_addr = self.next_addr;
        let bytes = (data.len() as u64 * data.elem_bytes()).max(64);
        self.next_addr += bytes.div_ceil(64) * 64;
        View::full(Rc::new(RefCell::new(data)))
    }

    // ================================================================
    // Lowered (slot-indexed) execution path
    // ================================================================

    fn take_frame(&mut self, size: usize) -> Frame {
        let mut f = self.frame_pool.pop().unwrap_or_default();
        f.clear();
        f.resize(size, None);
        f
    }

    fn release_frame(&mut self, mut f: Frame) {
        f.clear();
        if self.frame_pool.len() < 64 {
            self.frame_pool.push(f);
        }
    }

    /// Executes a lowered body against its frame with a program counter.
    fn exec_lowered(
        &mut self,
        lp: &LoweredProc,
        frame: &mut Frame,
        mon: &mut dyn Monitor,
    ) -> Result<()> {
        struct LoopState {
            cur: i64,
            hi: i64,
            iter: u32,
            parallel: bool,
        }
        let code = &lp.code;
        let mut loops: Vec<LoopState> = Vec::with_capacity(lp.max_loop_depth);
        let mut pc = 0usize;
        while let Some(inst) = code.get(pc) {
            if let Some(profile) = self.profile.as_deref_mut() {
                profile.bump(inst);
            }
            match inst {
                LInst::Assign { buf, idx, rhs } => {
                    if self.suppress == 0 {
                        mon.on_stmt();
                    }
                    let value = self.eval_l(lp, rhs, frame, mon)?.as_float();
                    self.store_l(lp, buf, idx, value, frame, mon)?;
                    pc += 1;
                }
                LInst::Reduce { buf, idx, rhs } => {
                    if self.suppress == 0 {
                        mon.on_stmt();
                    }
                    let add = self.eval_l(lp, rhs, frame, mon)?.as_float();
                    let old = self.load_l(lp, buf, idx, frame, mon)?;
                    if self.suppress == 0 {
                        mon.on_scalar_op(BinOp::Add, DataType::F64);
                    }
                    self.store_l(lp, buf, idx, old + add, frame, mon)?;
                    pc += 1;
                }
                LInst::Alloc {
                    slot,
                    ty,
                    dims,
                    mem,
                } => {
                    if self.suppress == 0 {
                        mon.on_stmt();
                    }
                    let mut sizes = Vec::with_capacity(dims.len());
                    for d in dims.iter() {
                        let v = self.eval_l(lp, d, frame, mon)?.as_int()?;
                        if v < 0 {
                            return Err(InterpError::Malformed(format!(
                                "negative allocation size for `{}`",
                                lp.slot_names[*slot as usize]
                            )));
                        }
                        sizes.push(v as usize);
                    }
                    let view = self.alloc_buffer(sizes, *ty, mem.clone());
                    frame[*slot as usize] = Some(Binding::Tensor(TensorBind::planned(view)));
                    pc += 1;
                }
                LInst::Loop {
                    iter,
                    lo,
                    hi,
                    end,
                    parallel,
                } => {
                    if self.suppress == 0 {
                        mon.on_stmt();
                    }
                    let lo = self.eval_l(lp, lo, frame, mon)?.as_int()?;
                    let hi = self.eval_l(lp, hi, frame, mon)?.as_int()?;
                    if lo < hi {
                        if self.suppress == 0 {
                            mon.on_loop_iter(*parallel);
                        }
                        frame[*iter as usize] = Some(Binding::Scalar(Value::Int(lo)));
                        loops.push(LoopState {
                            cur: lo,
                            hi,
                            iter: *iter,
                            parallel: *parallel,
                        });
                        pc += 1;
                    } else {
                        pc = *end as usize + 1;
                    }
                }
                LInst::EndLoop { start } => {
                    let Some(st) = loops.last_mut() else {
                        return Err(InterpError::Malformed(
                            "unbalanced loop in lowered code".into(),
                        ));
                    };
                    st.cur += 1;
                    if st.cur < st.hi {
                        if self.suppress == 0 {
                            mon.on_loop_iter(st.parallel);
                        }
                        frame[st.iter as usize] = Some(Binding::Scalar(Value::Int(st.cur)));
                        pc = *start as usize + 1;
                    } else {
                        loops.pop();
                        pc += 1;
                    }
                }
                LInst::Branch { cond, else_start } => {
                    if self.suppress == 0 {
                        mon.on_stmt();
                        mon.on_branch();
                    }
                    let c = self.eval_l(lp, cond, frame, mon)?.as_bool()?;
                    pc = if c { pc + 1 } else { *else_start as usize };
                }
                LInst::Jump { to } => pc = *to as usize,
                LInst::Call { callee, args } => {
                    if self.suppress == 0 {
                        mon.on_stmt();
                    }
                    self.exec_call_l(callee, args, lp, frame, mon)?;
                    pc += 1;
                }
                LInst::Pass => {
                    if self.suppress == 0 {
                        mon.on_stmt();
                    }
                    pc += 1;
                }
                LInst::WriteConfig {
                    config,
                    field,
                    value,
                } => {
                    if self.suppress == 0 {
                        mon.on_stmt();
                    }
                    let v = self.eval_l(lp, value, frame, mon)?.as_float();
                    if self.suppress == 0 {
                        mon.on_config_write(config, field);
                    }
                    self.configs
                        .insert((config.to_string(), field.to_string()), v);
                    pc += 1;
                }
                LInst::WindowBind { slot, rhs } => {
                    if self.suppress == 0 {
                        mon.on_stmt();
                    }
                    let view = self.eval_lwindow(lp, rhs, frame, mon)?;
                    frame[*slot as usize] = Some(Binding::Tensor(TensorBind::planned(view)));
                    pc += 1;
                }
            }
        }
        Ok(())
    }

    fn exec_call_l(
        &mut self,
        name: &str,
        args: &[LCallArg],
        caller: &LoweredProc,
        caller_frame: &Frame,
        mon: &mut dyn Monitor,
    ) -> Result<()> {
        let registry: &'a ProcRegistry = self.registry;
        let callee = registry
            .get(name)
            .ok_or_else(|| InterpError::UnknownProc(name.to_string()))?;
        let Some(lowered) = registry.lowered_for(name) else {
            return Err(InterpError::UnknownProc(name.to_string()));
        };
        if args.len() != lowered.args.len() {
            return Err(InterpError::BadCall(format!(
                "call to `{name}` passes {} arguments, expected {}",
                args.len(),
                lowered.args.len()
            )));
        }
        let suppress_inner = if self.suppress == 0 {
            mon.enter_call(callee)
        } else {
            false
        };
        if suppress_inner {
            self.suppress += 1;
        }
        let mut frame = self.take_frame(lowered.frame_size);
        let result = self.call_body_l(name, &lowered, args, caller, caller_frame, &mut frame, mon);
        self.release_frame(frame);
        if suppress_inner {
            self.suppress -= 1;
        }
        if self.suppress == 0 {
            mon.exit_call(callee);
        }
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn call_body_l(
        &mut self,
        name: &str,
        lowered: &LoweredProc,
        args: &[LCallArg],
        caller: &LoweredProc,
        caller_frame: &Frame,
        frame: &mut Frame,
        mon: &mut dyn Monitor,
    ) -> Result<()> {
        for (param, arg) in lowered.args.iter().zip(args) {
            let binding = match param.kind {
                LParamKind::Size => {
                    Binding::Scalar(self.eval_l(caller, &arg.scalar, caller_frame, mon)?)
                }
                LParamKind::Scalar => {
                    // Scalar arguments may also be passed 0-dim buffers
                    // by reference (Gemmini's acc_scale / clamp idiom).
                    let by_ref = match &arg.window {
                        LWindow::Var {
                            buf: LBufRef::Slot(s),
                        } => match &caller_frame[*s as usize] {
                            Some(Binding::Tensor(t)) => Some(t.clone()),
                            _ => None,
                        },
                        _ => None,
                    };
                    match by_ref {
                        Some(t) => Binding::Tensor(t),
                        None => {
                            Binding::Scalar(self.eval_l(caller, &arg.scalar, caller_frame, mon)?)
                        }
                    }
                }
                LParamKind::Tensor => {
                    let view = self.eval_lwindow(caller, &arg.window, caller_frame, mon)?;
                    Binding::Tensor(TensorBind::planned(view))
                }
            };
            frame[param.slot as usize] = Some(binding);
        }
        for (pred, pred_str) in &lowered.preds {
            let v = self.eval_l(lowered, pred, frame, mon)?;
            if !v.as_bool()? {
                return Err(InterpError::AssertFailed(format!(
                    "in call to `{name}`: {pred_str}"
                )));
            }
        }
        self.exec_lowered(lowered, frame, mon)
    }

    /// Resolves a buffer reference to its tensor binding, with the same
    /// error behaviour as the reference path's environment lookup.
    fn tensor_at<'f>(
        &self,
        lp: &LoweredProc,
        buf: &LBufRef,
        frame: &'f Frame,
    ) -> Result<&'f TensorBind> {
        match buf {
            LBufRef::Unbound(n) => Err(InterpError::Unbound(n.to_string())),
            LBufRef::Slot(s) => match &frame[*s as usize] {
                Some(Binding::Tensor(t)) => Ok(t),
                _ => Err(InterpError::Unbound(lp.slot_names[*s as usize].clone())),
            },
        }
    }

    /// Evaluates a lowered expression used as a tensor argument.
    fn eval_lwindow(
        &self,
        lp: &LoweredProc,
        w: &LWindow,
        frame: &Frame,
        mon: &mut dyn Monitor,
    ) -> Result<View> {
        match w {
            LWindow::Var { buf } => Ok(self.tensor_at(lp, buf, frame)?.view.clone()),
            LWindow::PointRead { buf, idx } => {
                // A point access used where a window is expected: a 0-dim view.
                let t = self.tensor_at(lp, buf, frame)?;
                let mut spec = Vec::with_capacity(idx.len());
                for e in idx.iter() {
                    spec.push(WindowDim::Point(self.eval_l(lp, e, frame, mon)?.as_int()?));
                }
                Ok(t.view.narrow(&spec))
            }
            LWindow::Window { buf, spec } => {
                let t = self.tensor_at(lp, buf, frame)?;
                let mut out = Vec::with_capacity(spec.len());
                for s in spec.iter() {
                    match s {
                        LWSpec::Point(e) => {
                            out.push(WindowDim::Point(self.eval_l(lp, e, frame, mon)?.as_int()?))
                        }
                        LWSpec::Interval { lo, .. } => out.push(WindowDim::Interval(
                            self.eval_l(lp, lo, frame, mon)?.as_int()?,
                        )),
                    }
                }
                Ok(t.view.narrow(&out))
            }
            LWindow::NotATensor { display } => Err(InterpError::BadCall(format!(
                "expression `{display}` cannot be passed as a tensor argument"
            ))),
        }
    }

    fn load_l(
        &self,
        lp: &LoweredProc,
        buf: &LBufRef,
        idx: &[LExpr],
        frame: &Frame,
        mon: &mut dyn Monitor,
    ) -> Result<f64> {
        // Evaluate indices into stack storage: element accesses are the
        // hottest operation in the executor and must not heap-allocate.
        let mut inline = [0i64; MAX_INLINE_RANK];
        let mut heap: Vec<i64>;
        let indices: &[i64] = if idx.len() <= MAX_INLINE_RANK {
            for (k, e) in idx.iter().enumerate() {
                inline[k] = self.eval_l(lp, e, frame, mon)?.as_int()?;
            }
            &inline[..idx.len()]
        } else {
            heap = Vec::with_capacity(idx.len());
            for e in idx {
                heap.push(self.eval_l(lp, e, frame, mon)?.as_int()?);
            }
            &heap
        };
        let (slot, t) = match buf {
            LBufRef::Unbound(n) => return Err(InterpError::Unbound(n.to_string())),
            LBufRef::Slot(s) => match &frame[*s as usize] {
                Some(Binding::Tensor(t)) => (*s, t),
                Some(Binding::Scalar(v)) if indices.is_empty() => return Ok(v.as_float()),
                _ => return Err(InterpError::Unbound(lp.slot_names[*s as usize].clone())),
            },
        };
        // Fast path: plan-resolved linear offset, one borrow for value and
        // byte address alike.
        if let Some(plan) = &t.plan {
            if let Some(lin) = plan.lin(indices) {
                let b = t.view.buf.borrow();
                if let Some(&value) = b.data.get(lin) {
                    if self.suppress == 0 {
                        mon.on_read(
                            &b.mem,
                            b.base_addr + lin as u64 * b.elem_bytes(),
                            b.elem.size_bytes(),
                        );
                    }
                    return Ok(value);
                }
            }
        }
        // Slow path: checked translation, canonical errors.
        let value = t
            .view
            .read(indices)
            .ok_or_else(|| InterpError::OutOfBounds {
                buf: lp.slot_names[slot as usize].clone(),
                idx: indices.to_vec(),
                dims: t.view.buf.borrow().dims.clone(),
            })?;
        if self.suppress == 0 {
            if let Some(addr) = t.view.byte_addr(indices) {
                mon.on_read(&t.view.mem(), addr, t.view.elem().size_bytes());
            }
        }
        Ok(value)
    }

    fn store_l(
        &self,
        lp: &LoweredProc,
        buf: &LBufRef,
        idx: &[LExpr],
        value: f64,
        frame: &Frame,
        mon: &mut dyn Monitor,
    ) -> Result<()> {
        let mut inline = [0i64; MAX_INLINE_RANK];
        let mut heap: Vec<i64>;
        let indices: &[i64] = if idx.len() <= MAX_INLINE_RANK {
            for (k, e) in idx.iter().enumerate() {
                inline[k] = self.eval_l(lp, e, frame, mon)?.as_int()?;
            }
            &inline[..idx.len()]
        } else {
            heap = Vec::with_capacity(idx.len());
            for e in idx {
                heap.push(self.eval_l(lp, e, frame, mon)?.as_int()?);
            }
            &heap
        };
        let (slot, t) = match buf {
            LBufRef::Unbound(n) => return Err(InterpError::Unbound(n.to_string())),
            LBufRef::Slot(s) => match &frame[*s as usize] {
                Some(Binding::Tensor(t)) => (*s, t),
                _ => return Err(InterpError::Unbound(lp.slot_names[*s as usize].clone())),
            },
        };
        if let Some(plan) = &t.plan {
            if let Some(lin) = plan.lin(indices) {
                let mut b = t.view.buf.borrow_mut();
                // Commit to the fast path only once the offset is known to
                // land, so a fallthrough to the slow path cannot emit the
                // write event twice.
                if lin < b.data.len() {
                    if self.suppress == 0 {
                        mon.on_write(
                            &b.mem,
                            b.base_addr + lin as u64 * b.elem_bytes(),
                            b.elem.size_bytes(),
                        );
                    }
                    b.data[lin] = value;
                    return Ok(());
                }
            }
        }
        if self.suppress == 0 {
            if let Some(addr) = t.view.byte_addr(indices) {
                mon.on_write(&t.view.mem(), addr, t.view.elem().size_bytes());
            }
        }
        t.view
            .write(indices, value)
            .ok_or_else(|| InterpError::OutOfBounds {
                buf: lp.slot_names[slot as usize].clone(),
                idx: indices.to_vec(),
                dims: t.view.buf.borrow().dims.clone(),
            })
    }

    fn eval_l(
        &self,
        lp: &LoweredProc,
        expr: &LExpr,
        frame: &Frame,
        mon: &mut dyn Monitor,
    ) -> Result<Value> {
        match expr {
            LExpr::Int(v) => Ok(Value::Int(*v)),
            LExpr::Float(v) => Ok(Value::Float(*v)),
            LExpr::Bool(b) => Ok(Value::Bool(*b)),
            LExpr::Var(buf) => match buf {
                LBufRef::Unbound(n) => Err(InterpError::Unbound(n.to_string())),
                LBufRef::Slot(s) => match &frame[*s as usize] {
                    Some(Binding::Scalar(v)) => Ok(*v),
                    Some(Binding::Tensor(t))
                        if t.view.kept.is_empty() || t.view.buf.borrow().dims.is_empty() =>
                    {
                        let value = t.view.read(&[]).ok_or_else(|| {
                            InterpError::Unbound(lp.slot_names[*s as usize].clone())
                        })?;
                        if self.suppress == 0 {
                            if let Some(addr) = t.view.byte_addr(&[]) {
                                mon.on_read(&t.view.mem(), addr, t.view.elem().size_bytes());
                            }
                        }
                        Ok(Value::Float(value))
                    }
                    Some(Binding::Tensor(_)) => Err(InterpError::Malformed(format!(
                        "tensor `{}` used in a scalar context",
                        lp.slot_names[*s as usize]
                    ))),
                    None => Err(InterpError::Unbound(lp.slot_names[*s as usize].clone())),
                },
            },
            LExpr::Read { buf, idx } => {
                let v = self.load_l(lp, buf, idx, frame, mon)?;
                Ok(Value::Float(v))
            }
            LExpr::WindowInScalar => Err(InterpError::Malformed(
                "window expression used in a scalar context".into(),
            )),
            LExpr::Bin { op, lhs, rhs } => {
                let l = self.eval_l(lp, lhs, frame, mon)?;
                let r = self.eval_l(lp, rhs, frame, mon)?;
                self.eval_bin(*op, l, r, mon)
            }
            LExpr::Un { op, arg } => {
                let v = self.eval_l(lp, arg, frame, mon)?;
                match op {
                    UnOp::Neg => Ok(match v {
                        Value::Int(i) => Value::Int(-i),
                        Value::Float(f) => Value::Float(-f),
                        Value::Bool(_) => {
                            return Err(InterpError::Malformed("negating a boolean".into()))
                        }
                    }),
                    UnOp::Not => Ok(Value::Bool(!v.as_bool()?)),
                }
            }
            LExpr::Stride { buf, dim } => {
                let t = self.tensor_at(lp, buf, frame)?;
                let b = t.view.buf.borrow();
                let stride: usize = b.dims.iter().skip(dim + 1).product();
                Ok(Value::Int(stride.max(1) as i64))
            }
            LExpr::ReadConfig { config, field } => {
                let v = self
                    .configs
                    .get(&(config.to_string(), field.to_string()))
                    .copied()
                    .unwrap_or(0.0);
                Ok(Value::Float(v))
            }
        }
    }

    // ================================================================
    // Reference (tree-walking, HashMap-environment) execution path
    // ================================================================

    /// Runs `proc` through the original tree-walking interpreter with a
    /// scoped `HashMap` environment. Kept as the semantic baseline: the
    /// differential tests assert it agrees with [`Interpreter::run`]
    /// event-for-event, and `interp_bench` measures the speedup of the
    /// lowered path against it.
    ///
    /// # Errors
    /// Same contract as [`Interpreter::run`].
    pub fn run_reference(
        &mut self,
        proc: &Proc,
        args: Vec<ArgValue>,
        monitor: &mut dyn Monitor,
    ) -> Result<()> {
        if args.len() != proc.args().len() {
            return Err(InterpError::BadCall(format!(
                "procedure `{}` expects {} arguments, got {}",
                proc.name(),
                proc.args().len(),
                args.len()
            )));
        }
        let mut env = Env::new();
        for (arg, value) in proc.args().iter().zip(args) {
            let binding = self.bind_arg(&arg.kind, value, arg.name.name())?;
            env.bind(arg.name.clone(), binding);
        }
        // Check assertion preconditions.
        for pred in proc.preds() {
            let v = self.eval(pred, &env, monitor)?;
            if !v.as_bool()? {
                return Err(InterpError::AssertFailed(pred.to_string()));
            }
        }
        self.exec_block(proc.body().stmts(), &mut env, monitor)
    }

    fn exec_block(
        &mut self,
        stmts: &[Stmt],
        env: &mut Env,
        monitor: &mut dyn Monitor,
    ) -> Result<()> {
        env.push();
        let result = (|| {
            for s in stmts {
                self.exec_stmt(s, env, monitor)?;
            }
            Ok(())
        })();
        env.pop();
        result
    }

    fn exec_stmt(&mut self, stmt: &Stmt, env: &mut Env, monitor: &mut dyn Monitor) -> Result<()> {
        if self.suppress == 0 {
            monitor.on_stmt();
        }
        match stmt {
            Stmt::Assign { buf, idx, rhs } => {
                let value = self.eval(rhs, env, monitor)?.as_float();
                self.store(buf, idx, value, env, monitor)
            }
            Stmt::Reduce { buf, idx, rhs } => {
                let add = self.eval(rhs, env, monitor)?.as_float();
                if self.suppress == 0 {
                    monitor.on_reduce_begin();
                }
                let old = self.load(buf, idx, env, monitor)?;
                if self.suppress == 0 {
                    monitor.on_scalar_op(BinOp::Add, DataType::F64);
                }
                let r = self.store(buf, idx, old + add, env, monitor);
                if self.suppress == 0 {
                    monitor.on_reduce_end();
                }
                r
            }
            Stmt::Alloc {
                name,
                ty,
                dims,
                mem,
            } => {
                let mut sizes = Vec::with_capacity(dims.len());
                for d in dims {
                    let v = self.eval(d, env, monitor)?.as_int()?;
                    if v < 0 {
                        return Err(InterpError::Malformed(format!(
                            "negative allocation size for `{name}`"
                        )));
                    }
                    sizes.push(v as usize);
                }
                let view = self.alloc_buffer(sizes, *ty, mem.clone());
                env.bind(name.clone(), Binding::Tensor(TensorBind::unplanned(view)));
                Ok(())
            }
            Stmt::For {
                iter,
                lo,
                hi,
                body,
                parallel,
            } => {
                let lo = self.eval(lo, env, monitor)?.as_int()?;
                let hi = self.eval(hi, env, monitor)?.as_int()?;
                self.loop_seq += 1;
                let instance = self.loop_seq;
                for i in lo..hi {
                    if self.suppress == 0 {
                        monitor.on_loop_iter(*parallel);
                        monitor.on_loop_enter(iter.name(), instance, i, *parallel);
                    }
                    env.push();
                    env.bind(iter.clone(), Binding::Scalar(Value::Int(i)));
                    let r = self.exec_block(body.stmts(), env, monitor);
                    env.pop();
                    if self.suppress == 0 {
                        monitor.on_loop_exit();
                    }
                    r?;
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if self.suppress == 0 {
                    monitor.on_branch();
                }
                let c = self.eval(cond, env, monitor)?.as_bool()?;
                if c {
                    self.exec_block(then_body.stmts(), env, monitor)
                } else {
                    self.exec_block(else_body.stmts(), env, monitor)
                }
            }
            Stmt::Call { proc, args } => self.exec_call(proc, args, env, monitor),
            Stmt::Pass => Ok(()),
            Stmt::WriteConfig {
                config,
                field,
                value,
            } => {
                let v = self.eval(value, env, monitor)?.as_float();
                if self.suppress == 0 {
                    monitor.on_config_write(config.name(), field);
                }
                self.configs
                    .insert((config.name().to_string(), field.clone()), v);
                Ok(())
            }
            Stmt::WindowStmt { name, rhs } => {
                let view = self.eval_window(rhs, env, monitor)?;
                env.bind(name.clone(), Binding::Tensor(TensorBind::unplanned(view)));
                Ok(())
            }
        }
    }

    fn exec_call(
        &mut self,
        name: &str,
        args: &[Expr],
        env: &mut Env,
        monitor: &mut dyn Monitor,
    ) -> Result<()> {
        let callee = self
            .registry
            .get(name)
            .ok_or_else(|| InterpError::UnknownProc(name.to_string()))?
            .clone();
        if args.len() != callee.args().len() {
            return Err(InterpError::BadCall(format!(
                "call to `{name}` passes {} arguments, expected {}",
                args.len(),
                callee.args().len()
            )));
        }
        let suppress_inner = if self.suppress == 0 {
            monitor.enter_call(&callee)
        } else {
            false
        };
        if suppress_inner {
            self.suppress += 1;
        }
        let mut callee_env = Env::new();
        let result = (|| {
            for (arg, expr) in callee.args().iter().zip(args) {
                let binding = match &arg.kind {
                    ArgKind::Size | ArgKind::Scalar { .. } => {
                        // Scalar arguments may also be passed 0-dim buffers
                        // by reference (Gemmini's acc_scale / clamp idiom).
                        match self.expr_as_view(expr, env) {
                            Some(view) if matches!(arg.kind, ArgKind::Scalar { .. }) => {
                                Binding::Tensor(TensorBind::unplanned(view))
                            }
                            _ => Binding::Scalar(self.eval(expr, env, monitor)?),
                        }
                    }
                    ArgKind::Tensor { .. } => {
                        let view = self.eval_window(expr, env, monitor)?;
                        Binding::Tensor(TensorBind::unplanned(view))
                    }
                };
                callee_env.bind(arg.name.clone(), binding);
            }
            for pred in callee.preds() {
                let v = self.eval(pred, &callee_env, monitor)?;
                if !v.as_bool()? {
                    return Err(InterpError::AssertFailed(format!(
                        "in call to `{name}`: {pred}"
                    )));
                }
            }
            self.exec_block(callee.body().stmts(), &mut callee_env, monitor)
        })();
        if suppress_inner {
            self.suppress -= 1;
        }
        if self.suppress == 0 {
            monitor.exit_call(&callee);
        }
        result
    }

    /// Resolves an argument expression that names a whole tensor, if it
    /// does (used for by-reference scalar buffers).
    fn expr_as_view(&self, expr: &Expr, env: &Env) -> Option<View> {
        match expr {
            Expr::Var(s) => match env.lookup(s) {
                Some(Binding::Tensor(t)) => Some(t.view.clone()),
                _ => None,
            },
            _ => None,
        }
    }

    /// Evaluates an expression used as a tensor argument: a bare buffer
    /// name, or a window expression.
    fn eval_window(&mut self, expr: &Expr, env: &Env, monitor: &mut dyn Monitor) -> Result<View> {
        match expr {
            Expr::Var(s) => match env.lookup(s) {
                Some(Binding::Tensor(t)) => Ok(t.view.clone()),
                _ => Err(InterpError::Unbound(s.name().to_string())),
            },
            Expr::Read { buf, idx } if !idx.is_empty() => {
                // A point access used where a window is expected: a 0-dim view.
                let view = match env.lookup(buf) {
                    Some(Binding::Tensor(t)) => t.view.clone(),
                    _ => return Err(InterpError::Unbound(buf.name().to_string())),
                };
                let mut spec = Vec::new();
                for e in idx {
                    spec.push(WindowDim::Point(self.eval(e, env, monitor)?.as_int()?));
                }
                Ok(view.narrow(&spec))
            }
            Expr::Window { buf, idx } => {
                let view = match env.lookup(buf) {
                    Some(Binding::Tensor(t)) => t.view.clone(),
                    _ => return Err(InterpError::Unbound(buf.name().to_string())),
                };
                let mut spec = Vec::new();
                for w in idx {
                    match w {
                        WAccess::Point(e) => {
                            spec.push(WindowDim::Point(self.eval(e, env, monitor)?.as_int()?))
                        }
                        WAccess::Interval(lo, _hi) => {
                            spec.push(WindowDim::Interval(self.eval(lo, env, monitor)?.as_int()?))
                        }
                    }
                }
                Ok(view.narrow(&spec))
            }
            other => Err(InterpError::BadCall(format!(
                "expression `{other}` cannot be passed as a tensor argument"
            ))),
        }
    }

    fn load(
        &mut self,
        buf: &Sym,
        idx: &[Expr],
        env: &Env,
        monitor: &mut dyn Monitor,
    ) -> Result<f64> {
        let mut indices = Vec::with_capacity(idx.len());
        for e in idx {
            indices.push(self.eval(e, env, monitor)?.as_int()?);
        }
        let view = match env.lookup(buf) {
            Some(Binding::Tensor(t)) => t.view.clone(),
            Some(Binding::Scalar(v)) if idx.is_empty() => return Ok(v.as_float()),
            _ => return Err(InterpError::Unbound(buf.name().to_string())),
        };
        let value = view
            .read(&indices)
            .ok_or_else(|| InterpError::OutOfBounds {
                buf: buf.name().to_string(),
                idx: indices.clone(),
                dims: view.buf.borrow().dims.clone(),
            })?;
        if self.suppress == 0 {
            if let Some(addr) = view.byte_addr(&indices) {
                monitor.on_read(&view.mem(), addr, view.elem().size_bytes());
            }
        }
        Ok(value)
    }

    fn store(
        &mut self,
        buf: &Sym,
        idx: &[Expr],
        value: f64,
        env: &Env,
        monitor: &mut dyn Monitor,
    ) -> Result<()> {
        let mut indices = Vec::with_capacity(idx.len());
        for e in idx {
            indices.push(self.eval(e, env, monitor)?.as_int()?);
        }
        let view = match env.lookup(buf) {
            Some(Binding::Tensor(t)) => t.view.clone(),
            _ => return Err(InterpError::Unbound(buf.name().to_string())),
        };
        if self.suppress == 0 {
            if let Some(addr) = view.byte_addr(&indices) {
                monitor.on_write(&view.mem(), addr, view.elem().size_bytes());
            }
        }
        view.write(&indices, value)
            .ok_or_else(|| InterpError::OutOfBounds {
                buf: buf.name().to_string(),
                idx: indices,
                dims: view.buf.borrow().dims.clone(),
            })
    }

    fn eval(&mut self, expr: &Expr, env: &Env, monitor: &mut dyn Monitor) -> Result<Value> {
        match expr {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Float(v) => Ok(Value::Float(*v)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Var(s) => match env.lookup(s) {
                Some(Binding::Scalar(v)) => Ok(*v),
                Some(Binding::Tensor(t))
                    if t.view.kept.is_empty() || t.view.buf.borrow().dims.is_empty() =>
                {
                    let view = t.view.clone();
                    let value = view
                        .read(&[])
                        .ok_or_else(|| InterpError::Unbound(s.name().to_string()))?;
                    if self.suppress == 0 {
                        if let Some(addr) = view.byte_addr(&[]) {
                            monitor.on_read(&view.mem(), addr, view.elem().size_bytes());
                        }
                    }
                    Ok(Value::Float(value))
                }
                Some(Binding::Tensor(_)) => Err(InterpError::Malformed(format!(
                    "tensor `{s}` used in a scalar context"
                ))),
                None => Err(InterpError::Unbound(s.name().to_string())),
            },
            Expr::Read { buf, idx } => {
                let v = self.load(buf, idx, env, monitor)?;
                Ok(Value::Float(v))
            }
            Expr::Window { .. } => Err(InterpError::Malformed(
                "window expression used in a scalar context".into(),
            )),
            Expr::Bin { op, lhs, rhs } => {
                let l = self.eval(lhs, env, monitor)?;
                let r = self.eval(rhs, env, monitor)?;
                self.eval_bin(*op, l, r, monitor)
            }
            Expr::Un { op, arg } => {
                let v = self.eval(arg, env, monitor)?;
                match op {
                    UnOp::Neg => Ok(match v {
                        Value::Int(i) => Value::Int(-i),
                        Value::Float(f) => Value::Float(-f),
                        Value::Bool(_) => {
                            return Err(InterpError::Malformed("negating a boolean".into()))
                        }
                    }),
                    UnOp::Not => Ok(Value::Bool(!v.as_bool()?)),
                }
            }
            Expr::Stride { buf, dim } => {
                let view = match env.lookup(buf) {
                    Some(Binding::Tensor(t)) => t.view.clone(),
                    _ => return Err(InterpError::Unbound(buf.name().to_string())),
                };
                let b = view.buf.borrow();
                let stride: usize = b.dims.iter().skip(dim + 1).product();
                Ok(Value::Int(stride.max(1) as i64))
            }
            Expr::ReadConfig { config, field } => {
                let v = self
                    .configs
                    .get(&(config.name().to_string(), field.clone()))
                    .copied()
                    .unwrap_or(0.0);
                Ok(Value::Float(v))
            }
        }
    }

    fn eval_bin(&self, op: BinOp, l: Value, r: Value, monitor: &mut dyn Monitor) -> Result<Value> {
        use BinOp::*;
        // Integer arithmetic when both sides are integers (index math).
        if let (Value::Int(a), Value::Int(b)) = (l, r) {
            return Ok(match op {
                Add => Value::Int(a + b),
                Sub => Value::Int(a - b),
                Mul => Value::Int(a * b),
                Div => {
                    if b == 0 {
                        return Err(InterpError::DivideByZero);
                    }
                    Value::Int(a.div_euclid(b))
                }
                Mod => {
                    if b == 0 {
                        return Err(InterpError::DivideByZero);
                    }
                    Value::Int(a.rem_euclid(b))
                }
                Lt => Value::Bool(a < b),
                Le => Value::Bool(a <= b),
                Gt => Value::Bool(a > b),
                Ge => Value::Bool(a >= b),
                Eq => Value::Bool(a == b),
                Ne => Value::Bool(a != b),
                And => Value::Bool(a != 0 && b != 0),
                Or => Value::Bool(a != 0 || b != 0),
            });
        }
        if let (Value::Bool(a), Value::Bool(b)) = (l, r) {
            return Ok(match op {
                And => Value::Bool(a && b),
                Or => Value::Bool(a || b),
                Eq => Value::Bool(a == b),
                Ne => Value::Bool(a != b),
                _ => return Err(InterpError::Malformed("arithmetic on booleans".into())),
            });
        }
        // Floating-point arithmetic: count it as compute.
        let a = l.as_float();
        let b = r.as_float();
        if matches!(op, Add | Sub | Mul | Div) && self.suppress == 0 {
            monitor.on_scalar_op(op, DataType::F64);
        }
        Ok(match op {
            Add => Value::Float(a + b),
            Sub => Value::Float(a - b),
            Mul => Value::Float(a * b),
            Div => Value::Float(a / b),
            Mod => Value::Float(a.rem_euclid(b)),
            Lt => Value::Bool(a < b),
            Le => Value::Bool(a <= b),
            Gt => Value::Bool(a > b),
            Ge => Value::Bool(a >= b),
            Eq => Value::Bool(a == b),
            Ne => Value::Bool(a != b),
            And | Or => return Err(InterpError::Malformed("logical op on floats".into())),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{CountingMonitor, NullMonitor};
    use exo_ir::{fb, ib, read, var, Mem, ProcBuilder};

    fn gemv_proc() -> Proc {
        ProcBuilder::new("gemv")
            .size_arg("M")
            .size_arg("N")
            .tensor_arg("A", DataType::F32, vec![var("M"), var("N")], Mem::Dram)
            .tensor_arg("x", DataType::F32, vec![var("N")], Mem::Dram)
            .tensor_arg("y", DataType::F32, vec![var("M")], Mem::Dram)
            .for_("i", ib(0), var("M"), |b| {
                b.for_("j", ib(0), var("N"), |b| {
                    let rhs = read("A", vec![var("i"), var("j")]) * read("x", vec![var("j")]);
                    b.reduce("y", vec![var("i")], rhs);
                });
            })
            .build()
    }

    #[test]
    fn gemv_computes_matrix_vector_product() {
        let registry = ProcRegistry::new();
        let mut interp = Interpreter::new(&registry);
        let (m, n) = (3usize, 4usize);
        let a: Vec<f64> = (0..m * n).map(|v| v as f64).collect();
        let x: Vec<f64> = (0..n).map(|v| (v + 1) as f64).collect();
        let (_, a_arg) = ArgValue::from_vec(a.clone(), vec![m, n], DataType::F32);
        let (_, x_arg) = ArgValue::from_vec(x.clone(), vec![n], DataType::F32);
        let (y_buf, y_arg) = ArgValue::zeros(vec![m], DataType::F32);
        interp
            .run(
                &gemv_proc(),
                vec![
                    ArgValue::Int(m as i64),
                    ArgValue::Int(n as i64),
                    a_arg,
                    x_arg,
                    y_arg,
                ],
                &mut NullMonitor,
            )
            .unwrap();
        let y = y_buf.borrow().data.clone();
        for i in 0..m {
            let expect: f64 = (0..n).map(|j| a[i * n + j] * x[j]).sum();
            assert!(
                (y[i] - expect).abs() < 1e-9,
                "row {i}: {} vs {expect}",
                y[i]
            );
        }
    }

    #[test]
    fn monitor_counts_flops_and_memory_traffic() {
        let registry = ProcRegistry::new();
        let mut interp = Interpreter::new(&registry);
        let (m, n) = (2usize, 8usize);
        let (_, a_arg) = ArgValue::from_vec(vec![1.0; m * n], vec![m, n], DataType::F32);
        let (_, x_arg) = ArgValue::from_vec(vec![1.0; n], vec![n], DataType::F32);
        let (_, y_arg) = ArgValue::zeros(vec![m], DataType::F32);
        let mut mon = CountingMonitor::default();
        interp
            .run(
                &gemv_proc(),
                vec![
                    ArgValue::Int(m as i64),
                    ArgValue::Int(n as i64),
                    a_arg,
                    x_arg,
                    y_arg,
                ],
                &mut mon,
            )
            .unwrap();
        // One multiply and one add per inner iteration.
        assert_eq!(mon.scalar_ops, (m * n * 2) as u64);
        assert_eq!(mon.loop_iters, (m + m * n) as u64);
        assert_eq!(mon.writes, (m * n) as u64);
        assert!(mon.reads >= (3 * m * n) as u64);
    }

    #[test]
    fn inst_profile_is_opt_in_and_counts_classes() {
        let registry = ProcRegistry::new();
        let mut interp = Interpreter::new(&registry);
        let (m, n) = (3usize, 4usize);
        let mk_args = || {
            let (_, a_arg) = ArgValue::from_vec(vec![1.0; m * n], vec![m, n], DataType::F32);
            let (_, x_arg) = ArgValue::from_vec(vec![1.0; n], vec![n], DataType::F32);
            let (_, y_arg) = ArgValue::zeros(vec![m], DataType::F32);
            vec![
                ArgValue::Int(m as i64),
                ArgValue::Int(n as i64),
                a_arg,
                x_arg,
                y_arg,
            ]
        };
        // Off by default: a run without enable_profile counts nothing.
        interp
            .run(&gemv_proc(), mk_args(), &mut NullMonitor)
            .unwrap();
        assert!(interp.take_profile().is_none(), "profiling must be opt-in");

        interp.enable_profile();
        interp
            .run(&gemv_proc(), mk_args(), &mut NullMonitor)
            .unwrap();
        let profile = interp.take_profile().expect("profile was enabled");
        assert_eq!(
            profile.count("reduce"),
            (m * n) as u64,
            "one Reduce per inner iteration"
        );
        assert!(profile.count("loop") >= m as u64, "{profile:?}");
        assert!(profile.count("end-loop") >= (m * n) as u64, "{profile:?}");
        assert_eq!(profile.count("no-such-class"), 0);
        assert_eq!(
            profile.total(),
            profile.iter().map(|(_, c)| c).sum::<u64>(),
            "total must equal the sum over classes"
        );
        // take_profile turned counting back off.
        assert!(interp.take_profile().is_none());
    }

    #[test]
    fn lowered_and_reference_paths_agree_event_for_event() {
        let (m, n) = (3usize, 5usize);
        let mk_args = || {
            let (_, a_arg) = ArgValue::from_vec(
                (0..m * n).map(|v| v as f64 * 0.5).collect(),
                vec![m, n],
                DataType::F32,
            );
            let (_, x_arg) = ArgValue::from_vec(
                (0..n).map(|v| v as f64 - 2.0).collect(),
                vec![n],
                DataType::F32,
            );
            let (yb, y_arg) = ArgValue::zeros(vec![m], DataType::F32);
            (
                yb,
                vec![
                    ArgValue::Int(m as i64),
                    ArgValue::Int(n as i64),
                    a_arg,
                    x_arg,
                    y_arg,
                ],
            )
        };
        let registry = ProcRegistry::new();
        let p = gemv_proc();
        let mut mon_new = CountingMonitor::default();
        let mut mon_old = CountingMonitor::default();
        let (y_new, args_new) = mk_args();
        Interpreter::new(&registry)
            .run(&p, args_new, &mut mon_new)
            .unwrap();
        let (y_old, args_old) = mk_args();
        Interpreter::new(&registry)
            .run_reference(&p, args_old, &mut mon_old)
            .unwrap();
        assert_eq!(y_new.borrow().data, y_old.borrow().data);
        assert_eq!(mon_new.scalar_ops, mon_old.scalar_ops);
        assert_eq!(mon_new.loop_iters, mon_old.loop_iters);
        assert_eq!(mon_new.reads, mon_old.reads);
        assert_eq!(mon_new.writes, mon_old.writes);
        assert_eq!(mon_new.stmts, mon_old.stmts);
    }

    #[test]
    fn registered_procs_reuse_the_cached_lowering() {
        let mut registry = ProcRegistry::new();
        registry.register(gemv_proc());
        assert!(registry.lowered_for("gemv").is_some());
        let p = gemv_proc();
        assert!(registry.lowered_if_registered(&p).is_some());
        // A different body under the same name must not reuse the cache.
        let other = ProcBuilder::new("gemv").size_arg("M").build();
        assert!(registry.lowered_if_registered(&other).is_none());
    }

    #[test]
    fn as_int_rejects_floats_outside_the_exact_integer_range() {
        assert_eq!(Value::Float(12.0).as_int().unwrap(), 12);
        assert_eq!(Value::Float(-3.0).as_int().unwrap(), -3);
        assert!(Value::Float(2.5).as_int().is_err());
        // 2^63 is integral but saturates in `as i64`; it must be rejected
        // instead of silently becoming i64::MAX.
        assert!(Value::Float(9.223372036854776e18).as_int().is_err());
        assert!(Value::Float(1e300).as_int().is_err());
        assert!(Value::Float(f64::NAN).as_int().is_err());
        assert!(Value::Float(f64::INFINITY).as_int().is_err());
        assert_eq!(Value::Float(i64::MIN as f64).as_int().unwrap(), i64::MIN);
    }

    #[test]
    fn as_bool_no_longer_coerces_integers() {
        assert!(Value::Bool(true).as_bool().unwrap());
        assert!(matches!(
            Value::Int(1).as_bool(),
            Err(InterpError::Malformed(_))
        ));
        assert!(matches!(
            Value::Float(1.0).as_bool(),
            Err(InterpError::Malformed(_))
        ));
    }

    #[test]
    fn assertion_failures_are_reported() {
        let p = ProcBuilder::new("p")
            .size_arg("n")
            .assert_(Expr::eq_(Expr::modulo(var("n"), ib(8)), ib(0)))
            .build();
        let registry = ProcRegistry::new();
        let mut interp = Interpreter::new(&registry);
        assert!(matches!(
            interp.run(&p, vec![ArgValue::Int(12)], &mut NullMonitor),
            Err(InterpError::AssertFailed(_))
        ));
        assert!(interp
            .run(&p, vec![ArgValue::Int(16)], &mut NullMonitor)
            .is_ok());
    }

    #[test]
    fn out_of_bounds_accesses_error() {
        let p = ProcBuilder::new("p")
            .size_arg("n")
            .tensor_arg("x", DataType::F32, vec![var("n")], Mem::Dram)
            .for_("i", ib(0), var("n") + ib(1), |b| {
                b.assign("x", vec![var("i")], fb(1.0));
            })
            .build();
        let registry = ProcRegistry::new();
        let mut interp = Interpreter::new(&registry);
        let (_, x_arg) = ArgValue::zeros(vec![4], DataType::F32);
        assert!(matches!(
            interp.run(&p, vec![ArgValue::Int(4), x_arg], &mut NullMonitor),
            Err(InterpError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn calls_execute_instruction_bodies_through_windows() {
        // An 8-lane vector load instruction: dst[0:8] = src[0:8].
        let loadu = ProcBuilder::new("vec_load8")
            .window_arg("dst", DataType::F32, vec![ib(8)], Mem::VecAvx2)
            .window_arg("src", DataType::F32, vec![ib(8)], Mem::Dram)
            .instr("avx2_load", "load")
            .with_body(|b| {
                b.for_("l", ib(0), ib(8), |b| {
                    b.assign("dst", vec![var("l")], b.read("src", vec![var("l")]));
                });
            })
            .build();
        let caller = ProcBuilder::new("caller")
            .tensor_arg("x", DataType::F32, vec![ib(16)], Mem::Dram)
            .tensor_arg("out", DataType::F32, vec![ib(16)], Mem::Dram)
            .with_body(|b| {
                b.call(
                    "vec_load8",
                    vec![
                        Expr::Window {
                            buf: Sym::new("out"),
                            idx: vec![WAccess::Interval(ib(8), ib(16))],
                        },
                        Expr::Window {
                            buf: Sym::new("x"),
                            idx: vec![WAccess::Interval(ib(0), ib(8))],
                        },
                    ],
                );
            })
            .build();
        let mut registry = ProcRegistry::new();
        registry.register(loadu);
        let mut interp = Interpreter::new(&registry);
        let (_, x_arg) =
            ArgValue::from_vec((0..16).map(|v| v as f64).collect(), vec![16], DataType::F32);
        let (out_buf, out_arg) = ArgValue::zeros(vec![16], DataType::F32);
        interp
            .run(&caller, vec![x_arg, out_arg], &mut NullMonitor)
            .unwrap();
        let out = out_buf.borrow().data.clone();
        assert_eq!(&out[8..16], &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert!(out[..8].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn unknown_procedures_error() {
        let caller = ProcBuilder::new("caller")
            .with_body(|b| {
                b.call("missing", vec![]);
            })
            .build();
        let registry = ProcRegistry::new();
        let mut interp = Interpreter::new(&registry);
        assert!(matches!(
            interp.run(&caller, vec![], &mut NullMonitor),
            Err(InterpError::UnknownProc(_))
        ));
    }

    #[test]
    fn config_writes_are_visible_and_counted() {
        let p = ProcBuilder::new("p")
            .with_body(|b| {
                b.write_config("cfg", "stride", ib(4));
            })
            .build();
        let registry = ProcRegistry::new();
        let mut interp = Interpreter::new(&registry);
        let mut mon = CountingMonitor::default();
        interp.run(&p, vec![], &mut mon).unwrap();
        assert_eq!(interp.config("cfg", "stride"), Some(4.0));
        assert_eq!(mon.config_writes, 1);
    }

    #[test]
    fn scalar_zero_dim_buffers_passed_by_reference() {
        // callee: out = in * 2 where out/in are 0-dim tensors.
        let callee = ProcBuilder::new("double")
            .tensor_arg("src", DataType::F32, vec![], Mem::Dram)
            .tensor_arg("dst", DataType::F32, vec![], Mem::Dram)
            .with_body(|b| {
                b.assign("dst", vec![], b.read("src", vec![]) * fb(2.0));
            })
            .build();
        let caller = ProcBuilder::new("caller")
            .tensor_arg("out", DataType::F32, vec![ib(1)], Mem::Dram)
            .with_body(|b| {
                b.alloc("tmp", DataType::F32, vec![], Mem::Dram);
                b.assign("tmp", vec![], fb(21.0));
                b.call("double", vec![var("tmp"), var("tmp")]);
                b.assign("out", vec![ib(0)], b.read("tmp", vec![]));
            })
            .build();
        let mut registry = ProcRegistry::new();
        registry.register(callee);
        let mut interp = Interpreter::new(&registry);
        let (out_buf, out_arg) = ArgValue::zeros(vec![1], DataType::F32);
        interp
            .run(&caller, vec![out_arg], &mut NullMonitor)
            .unwrap();
        assert_eq!(out_buf.borrow().data[0], 42.0);
    }

    #[test]
    fn loop_scoping_shadows_outer_bindings() {
        // Allocation inside a loop body is fresh each iteration.
        let p = ProcBuilder::new("p")
            .tensor_arg("out", DataType::F32, vec![ib(4)], Mem::Dram)
            .for_("i", ib(0), ib(4), |b| {
                b.alloc("t", DataType::F32, vec![], Mem::Dram);
                b.reduce("t", vec![], fb(1.0));
                b.assign("out", vec![var("i")], b.read("t", vec![]));
            })
            .build();
        let registry = ProcRegistry::new();
        let mut interp = Interpreter::new(&registry);
        let (out_buf, out_arg) = ArgValue::zeros(vec![4], DataType::F32);
        interp.run(&p, vec![out_arg], &mut NullMonitor).unwrap();
        assert_eq!(out_buf.borrow().data, vec![1.0; 4]);
    }

    #[test]
    fn stride_expression_reflects_row_major_layout() {
        let p = ProcBuilder::new("p")
            .tensor_arg("A", DataType::F32, vec![ib(3), ib(5)], Mem::Dram)
            .tensor_arg("out", DataType::F32, vec![ib(1)], Mem::Dram)
            .with_body(|b| {
                b.assign(
                    "out",
                    vec![ib(0)],
                    Expr::Stride {
                        buf: Sym::new("A"),
                        dim: 0,
                    },
                );
            })
            .build();
        let registry = ProcRegistry::new();
        let mut interp = Interpreter::new(&registry);
        let (_, a_arg) = ArgValue::zeros(vec![3, 5], DataType::F32);
        let (out_buf, out_arg) = ArgValue::zeros(vec![1], DataType::F32);
        interp
            .run(&p, vec![a_arg, out_arg], &mut NullMonitor)
            .unwrap();
        assert_eq!(out_buf.borrow().data[0], 5.0);
    }
}
