//! Affine (linear) normal forms for index expressions.

use exo_ir::{BinOp, Expr, Sym, UnOp};
use std::collections::BTreeMap;

/// An atom of a linear expression: either a plain symbol or an opaque
/// non-affine sub-expression (identified by its printed form, so
/// structurally identical opaque terms combine).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum Atom {
    /// A symbol (size argument, loop iterator, scalar).
    Var(Sym),
    /// An opaque sub-expression (division, modulo, buffer read, ...),
    /// keyed by its canonical textual form.
    Opaque(String),
}

/// An affine expression: `constant + Σ coeff·atom`.
///
/// Non-affine sub-expressions (e.g. `i / 8`, `A[i]`) are folded into
/// [`Atom::Opaque`] terms, so two syntactically identical opaque terms
/// still cancel — enough to prove equalities such as
/// `8*(i/8) + i%8 - (8*(i/8) + i%8) = 0`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LinExpr {
    /// Coefficients per atom (never zero).
    pub terms: BTreeMap<Atom, i64>,
    /// Constant offset.
    pub constant: i64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: i64) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// A single variable with coefficient 1.
    pub fn var(sym: impl Into<Sym>) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(Atom::Var(sym.into()), 1);
        LinExpr { terms, constant: 0 }
    }

    /// Builds the affine normal form of an expression. Always succeeds;
    /// non-affine parts become opaque atoms.
    pub fn from_expr(e: &Expr) -> Self {
        match e {
            Expr::Int(v) => LinExpr::constant(*v),
            Expr::Bool(b) => LinExpr::constant(if *b { 1 } else { 0 }),
            Expr::Var(s) => LinExpr::var(s.clone()),
            Expr::Bin {
                op: BinOp::Add,
                lhs,
                rhs,
            } => LinExpr::from_expr(lhs).add(&LinExpr::from_expr(rhs)),
            Expr::Bin {
                op: BinOp::Sub,
                lhs,
                rhs,
            } => LinExpr::from_expr(lhs).add(&LinExpr::from_expr(rhs).scale(-1)),
            Expr::Bin {
                op: BinOp::Mul,
                lhs,
                rhs,
            } => {
                let l = LinExpr::from_expr(lhs);
                let r = LinExpr::from_expr(rhs);
                if let Some(c) = l.as_constant() {
                    r.scale(c)
                } else if let Some(c) = r.as_constant() {
                    l.scale(c)
                } else {
                    LinExpr::opaque(e)
                }
            }
            Expr::Un { op: UnOp::Neg, arg } => LinExpr::from_expr(arg).scale(-1),
            other => LinExpr::opaque(other),
        }
    }

    fn opaque(e: &Expr) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(Atom::Opaque(e.to_string()), 1);
        LinExpr { terms, constant: 0 }
    }

    /// Sum of two linear expressions.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut terms = self.terms.clone();
        for (atom, coeff) in &other.terms {
            let entry = terms.entry(atom.clone()).or_insert(0);
            *entry += coeff;
            if *entry == 0 {
                terms.remove(atom);
            }
        }
        LinExpr {
            terms,
            constant: self.constant + other.constant,
        }
    }

    /// Difference `self - other`.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(-1))
    }

    /// Scales every coefficient and the constant by `k`.
    pub fn scale(&self, k: i64) -> LinExpr {
        if k == 0 {
            return LinExpr::zero();
        }
        LinExpr {
            terms: self.terms.iter().map(|(a, c)| (a.clone(), c * k)).collect(),
            constant: self.constant * k,
        }
    }

    /// Returns the constant value if the expression has no terms.
    pub fn as_constant(&self) -> Option<i64> {
        if self.terms.is_empty() {
            Some(self.constant)
        } else {
            None
        }
    }

    /// The coefficient of a symbol (0 if absent).
    pub fn coeff_of(&self, sym: &Sym) -> i64 {
        self.terms
            .get(&Atom::Var(sym.clone()))
            .copied()
            .unwrap_or(0)
    }

    /// Whether the expression mentions the symbol (directly or inside an
    /// opaque term).
    pub fn mentions(&self, sym: &Sym) -> bool {
        self.terms.keys().any(|a| match a {
            Atom::Var(s) => s == sym,
            Atom::Opaque(text) => {
                // Word-boundary containment check over the printed form.
                contains_ident(text, sym.name())
            }
        })
    }

    /// Whether the expression is syntactically zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty() && self.constant == 0
    }

    /// Whether every coefficient and the constant are divisible by `k`.
    pub fn divisible_by(&self, k: i64) -> bool {
        if k == 0 {
            return false;
        }
        self.constant % k == 0 && self.terms.values().all(|c| c % k == 0)
    }
}

/// Whether `text` contains `ident` as a whole identifier (not as a
/// substring of a longer identifier).
pub(crate) fn contains_ident(text: &str, ident: &str) -> bool {
    let bytes = text.as_bytes();
    let mut start = 0;
    while let Some(pos) = text[start..].find(ident) {
        let begin = start + pos;
        let end = begin + ident.len();
        let left_ok =
            begin == 0 || !(bytes[begin - 1].is_ascii_alphanumeric() || bytes[begin - 1] == b'_');
        let right_ok =
            end == bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if left_ok && right_ok {
            return true;
        }
        start = begin + 1;
    }
    false
}

/// Whether two expressions are provably equal by affine normalization.
pub fn provably_equal(a: &Expr, b: &Expr) -> bool {
    // Leaf-vs-leaf comparisons are decided without building linear forms
    // (which allocate): two literals compare directly, a literal never
    // equals a lone symbolic variable, and two variables are equal exactly
    // when they are the same symbol — all cases where the normalization
    // below provably reaches the same verdict.
    match (a, b) {
        (Expr::Int(x), Expr::Int(y)) => return x == y,
        (Expr::Int(_), Expr::Var(_)) | (Expr::Var(_), Expr::Int(_)) => return false,
        (Expr::Var(x), Expr::Var(y)) => return x == y,
        _ => {}
    }
    a == b || LinExpr::from_expr(a).sub(&LinExpr::from_expr(b)).is_zero()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_ir::{ib, read, var};

    #[test]
    fn normalizes_affine_arithmetic() {
        // 8*io + ii + 1 - (ii + 8*io) == 1
        let a = ib(8) * var("io") + var("ii") + ib(1);
        let b = var("ii") + ib(8) * var("io");
        let diff = LinExpr::from_expr(&a).sub(&LinExpr::from_expr(&b));
        assert_eq!(diff.as_constant(), Some(1));
    }

    #[test]
    fn constant_folding_through_scale() {
        let e = (var("i") + ib(2)) * ib(3);
        let lin = LinExpr::from_expr(&e);
        assert_eq!(lin.coeff_of(&Sym::new("i")), 3);
        assert_eq!(lin.constant, 6);
    }

    #[test]
    fn opaque_terms_cancel_when_identical() {
        let a = (var("i") / ib(8)) * ib(8) + var("i") % ib(8);
        let b = (var("i") / ib(8)) * ib(8) + var("i") % ib(8);
        assert!(provably_equal(&a, &b));
        let c = (var("i") / ib(4)) * ib(8) + var("i") % ib(8);
        assert!(!provably_equal(&a, &c));
    }

    #[test]
    fn mentions_sees_into_opaque_atoms() {
        let e = read("A", vec![var("i") / ib(8)]);
        let lin = LinExpr::from_expr(&e);
        assert!(lin.mentions(&Sym::new("i")));
        assert!(!lin.mentions(&Sym::new("io")));
        // `i` must not be found inside `io`.
        let e2 = read("A", vec![var("io")]);
        assert!(!LinExpr::from_expr(&e2).mentions(&Sym::new("i")));
    }

    #[test]
    fn divisibility() {
        let e = ib(8) * var("io") + ib(16);
        assert!(LinExpr::from_expr(&e).divisible_by(8));
        assert!(!LinExpr::from_expr(&e).divisible_by(3));
        let e2 = ib(8) * var("io") + var("ii");
        assert!(!LinExpr::from_expr(&e2).divisible_by(8));
    }

    #[test]
    fn nonlinear_products_are_opaque() {
        let e = var("i") * var("j");
        let lin = LinExpr::from_expr(&e);
        assert!(lin.as_constant().is_none());
        assert!(lin.mentions(&Sym::new("i")));
        assert!(lin.mentions(&Sym::new("j")));
    }
}
