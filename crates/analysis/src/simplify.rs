//! Arithmetic simplification of expressions and predicates.
//!
//! Backs the `simplify` scheduling primitive and the trivial-branch
//! elimination in `eliminate_dead_code`.

use crate::context::Context;
use crate::linear::LinExpr;
use exo_ir::{BinOp, Expr, Sym, UnOp, WAccess};

/// Conservative constant range of an expression under `ctx`, if derivable.
fn const_range(e: &Expr, ctx: &Context) -> Option<(i64, i64)> {
    match e {
        Expr::Int(v) => Some((*v, *v)),
        Expr::Var(s) => {
            let lo = ctx.lower_bound(s)?;
            let hi = ctx.upper_bound(s)?;
            Some((lo, hi))
        }
        Expr::Bin { op, lhs, rhs } => {
            let (llo, lhi) = const_range(lhs, ctx)?;
            let (rlo, rhi) = const_range(rhs, ctx)?;
            match op {
                BinOp::Add => Some((llo + rlo, lhi + rhi)),
                BinOp::Sub => Some((llo - rhi, lhi - rlo)),
                BinOp::Mul => {
                    let candidates = [llo * rlo, llo * rhi, lhi * rlo, lhi * rhi];
                    let lo = candidates.iter().copied().fold(i64::MAX, i64::min);
                    let hi = candidates.iter().copied().fold(i64::MIN, i64::max);
                    Some((lo, hi))
                }
                BinOp::Mod => {
                    if rlo == rhi && rlo > 0 {
                        Some((0, rlo - 1))
                    } else {
                        None
                    }
                }
                BinOp::Div => {
                    if rlo == rhi && rlo > 0 && llo >= 0 {
                        Some((llo / rlo, lhi / rlo))
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Simplifies an expression: constant folding, arithmetic identities, and
/// floor-division / modulo cancellation justified by `ctx`'s divisibility
/// and range facts.
pub fn simplify_expr(e: &Expr, ctx: &Context) -> Expr {
    let simplified = match e {
        Expr::Bin { op, lhs, rhs } => {
            let l = simplify_expr(lhs, ctx);
            let r = simplify_expr(rhs, ctx);
            simplify_bin(*op, l, r, ctx)
        }
        Expr::Un { op, arg } => {
            let a = simplify_expr(arg, ctx);
            match (op, &a) {
                (UnOp::Neg, Expr::Int(v)) => Expr::Int(-v),
                (UnOp::Neg, Expr::Float(v)) => Expr::Float(-v),
                (UnOp::Not, Expr::Bool(b)) => Expr::Bool(!b),
                _ => Expr::Un {
                    op: *op,
                    arg: Box::new(a),
                },
            }
        }
        Expr::Read { buf, idx } => Expr::Read {
            buf: buf.clone(),
            idx: idx.iter().map(|i| simplify_expr(i, ctx)).collect(),
        },
        Expr::Window { buf, idx } => Expr::Window {
            buf: buf.clone(),
            idx: idx
                .iter()
                .map(|w| match w {
                    WAccess::Point(e) => WAccess::Point(simplify_expr(e, ctx)),
                    WAccess::Interval(lo, hi) => {
                        WAccess::Interval(simplify_expr(lo, ctx), simplify_expr(hi, ctx))
                    }
                })
                .collect(),
        },
        other => other.clone(),
    };
    simplified
}

fn rebuild_linear(lin: &LinExpr) -> Option<Expr> {
    // Only rebuild when every atom is a plain variable.
    let mut expr: Option<Expr> = None;
    for (atom, coeff) in &lin.terms {
        let crate::linear::Atom::Var(s) = atom else {
            return None;
        };
        let term = if *coeff == 1 {
            Expr::Var(s.clone())
        } else {
            Expr::Int(*coeff) * Expr::Var(s.clone())
        };
        expr = Some(match expr {
            None => term,
            Some(prev) => prev + term,
        });
    }
    let out = match (expr, lin.constant) {
        (None, c) => Expr::Int(c),
        (Some(e), 0) => e,
        (Some(e), c) if c > 0 => e + Expr::Int(c),
        (Some(e), c) => e - Expr::Int(-c),
    };
    Some(out)
}

fn simplify_bin(op: BinOp, l: Expr, r: Expr, ctx: &Context) -> Expr {
    use BinOp::*;
    // Integer constant folding.
    if let (Some(a), Some(b)) = (l.as_int(), r.as_int()) {
        let v = match op {
            Add => Some(a + b),
            Sub => Some(a - b),
            Mul => Some(a * b),
            Div if b != 0 => Some(a.div_euclid(b)),
            Mod if b != 0 => Some(a.rem_euclid(b)),
            _ => None,
        };
        if let Some(v) = v {
            return Expr::Int(v);
        }
        let b_cmp = match op {
            Lt => Some(a < b),
            Le => Some(a <= b),
            Gt => Some(a > b),
            Ge => Some(a >= b),
            Eq => Some(a == b),
            Ne => Some(a != b),
            _ => None,
        };
        if let Some(v) = b_cmp {
            return Expr::Bool(v);
        }
    }
    // Float constant folding for + - *.
    if let (Expr::Float(a), Expr::Float(b)) = (&l, &r) {
        match op {
            Add => return Expr::Float(a + b),
            Sub => return Expr::Float(a - b),
            Mul => return Expr::Float(a * b),
            _ => {}
        }
    }
    match (op, &l, &r) {
        // Identities.
        (Add, Expr::Int(0), _) => return r,
        (Add, _, Expr::Int(0)) => return l,
        (Sub, _, Expr::Int(0)) => return l,
        (Mul, Expr::Int(1), _) => return r,
        (Mul, _, Expr::Int(1)) => return l,
        (Mul, Expr::Int(0), _) | (Mul, _, Expr::Int(0)) => return Expr::Int(0),
        (Div, _, Expr::Int(1)) => return l,
        (Mod, _, Expr::Int(1)) => return Expr::Int(0),
        (Add, Expr::Float(z), _) if *z == 0.0 => return r,
        (Add, _, Expr::Float(z)) if *z == 0.0 => return l,
        (Mul, Expr::Float(o), _) if *o == 1.0 => return r,
        (Mul, _, Expr::Float(o)) if *o == 1.0 => return l,
        (And, Expr::Bool(true), _) => return r,
        (And, _, Expr::Bool(true)) => return l,
        (And, Expr::Bool(false), _) | (And, _, Expr::Bool(false)) => return Expr::Bool(false),
        (Or, Expr::Bool(false), _) => return r,
        (Or, _, Expr::Bool(false)) => return l,
        _ => {}
    }
    // `(E / k) * k == E` when `E` is provably divisible by `k` (harvested
    // from `assert E % k == 0` facts). This pattern arises from perfect
    // tiling and the Halide-style compute_at bounds.
    if op == Mul {
        let try_cancel = |maybe_div: &Expr, maybe_k: &Expr| -> Option<Expr> {
            let k = maybe_k.as_int()?;
            if let Expr::Bin { op: Div, lhs, rhs } = maybe_div {
                if rhs.as_int() == Some(k) && k > 0 && ctx.divides(lhs, k) {
                    return Some((**lhs).clone());
                }
            }
            None
        };
        if let Some(e) = try_cancel(&l, &r).or_else(|| try_cancel(&r, &l)) {
            return e;
        }
    }
    // Affine normalization for + and - over integer-like expressions,
    // rebuilding a canonical form when it is purely linear in variables.
    if matches!(op, Add | Sub) {
        let lin = match op {
            Add => LinExpr::from_expr(&l).add(&LinExpr::from_expr(&r)),
            _ => LinExpr::from_expr(&l).sub(&LinExpr::from_expr(&r)),
        };
        if let Some(c) = lin.as_constant() {
            if !matches!((&l, &r), (Expr::Float(_), _) | (_, Expr::Float(_))) {
                return Expr::Int(c);
            }
        }
        if let Some(e) = rebuild_linear(&lin) {
            return e;
        }
    }
    // Floor-division and modulo cancellation.
    if let (Div, _, Expr::Int(k)) | (Mod, _, Expr::Int(k)) = (op, &l, &r) {
        let k = *k;
        if k > 0 {
            let lin = LinExpr::from_expr(&l);
            // Split the numerator into a part divisible by k and a residue.
            let mut divisible = LinExpr::zero();
            let mut residue = LinExpr::zero();
            for (atom, coeff) in &lin.terms {
                if coeff % k == 0 {
                    divisible.terms.insert(atom.clone(), *coeff);
                } else {
                    residue.terms.insert(atom.clone(), *coeff);
                }
            }
            if lin.constant % k == 0 {
                divisible.constant = lin.constant;
            } else {
                residue.constant = lin.constant;
            }
            let residue_expr = rebuild_linear(&residue);
            let residue_range = residue_expr
                .as_ref()
                .and_then(|e| const_range(e, ctx))
                .or_else(|| {
                    if residue.is_zero() {
                        Some((0, 0))
                    } else {
                        None
                    }
                });
            if let Some((rlo, rhi)) = residue_range {
                if rlo >= 0 && rhi < k {
                    match op {
                        Div => {
                            if let Some(d) = rebuild_linear(&divisible.scale_div(k)) {
                                return d;
                            }
                        }
                        Mod => {
                            if let Some(r) = residue_expr {
                                return r;
                            }
                            return Expr::Int(residue.constant.rem_euclid(k));
                        }
                        _ => {}
                    }
                }
            }
            // Whole-expression divisibility from context facts.
            if ctx.divides(&l, k) && op == Mod {
                return Expr::Int(0);
            }
        }
    }
    Expr::Bin {
        op,
        lhs: Box::new(l),
        rhs: Box::new(r),
    }
}

impl LinExpr {
    /// Divides every coefficient and the constant by `k`; only meaningful
    /// when [`LinExpr::divisible_by`] holds.
    pub(crate) fn scale_div(&self, k: i64) -> LinExpr {
        LinExpr {
            terms: self.terms.iter().map(|(a, c)| (a.clone(), c / k)).collect(),
            constant: self.constant / k,
        }
    }
}

/// Attempts to decide a predicate under the facts in `ctx`.
///
/// Returns `Some(true)` / `Some(false)` when the predicate is provably
/// true / false, `None` when undecidable. Used by `eliminate_dead_code`
/// and `specialize`.
pub fn simplify_predicate(pred: &Expr, ctx: &Context) -> Option<bool> {
    let simplified = simplify_expr(pred, ctx);
    match &simplified {
        Expr::Bool(b) => Some(*b),
        Expr::Bin { op, lhs, rhs } => {
            let (llo, lhi) = const_range(lhs, ctx)?;
            let (rlo, rhi) = const_range(rhs, ctx)?;
            match op {
                BinOp::Lt if lhi < rlo => Some(true),
                BinOp::Lt if llo >= rhi => Some(false),
                BinOp::Le if lhi <= rlo => Some(true),
                BinOp::Le if llo > rhi => Some(false),
                BinOp::Gt if llo > rhi => Some(true),
                BinOp::Gt if lhi <= rlo => Some(false),
                BinOp::Ge if llo >= rhi => Some(true),
                BinOp::Ge if lhi < rlo => Some(false),
                BinOp::Eq if llo == lhi && rlo == rhi && llo == rlo => Some(true),
                BinOp::Eq if lhi < rlo || llo > rhi => Some(false),
                BinOp::Ne if lhi < rlo || llo > rhi => Some(true),
                BinOp::Ne if llo == lhi && rlo == rhi && llo == rlo => Some(false),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Simplifies an expression with respect to an additional equality
/// assumption `sym == value` (used by `specialize` and `unroll_loop`).
pub fn simplify_with_binding(e: &Expr, sym: &Sym, value: i64, ctx: &Context) -> Expr {
    let substituted = exo_ir::substitute_expr(e.clone(), sym, &Expr::Int(value));
    simplify_expr(&substituted, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_ir::{ib, var};

    #[test]
    fn folds_constants_and_identities() {
        let ctx = Context::new();
        assert_eq!(simplify_expr(&(ib(2) + ib(3)), &ctx), ib(5));
        assert_eq!(simplify_expr(&(var("x") * ib(1)), &ctx), var("x"));
        assert_eq!(simplify_expr(&(var("x") + ib(0)), &ctx), var("x"));
        assert_eq!(simplify_expr(&(var("x") * ib(0)), &ctx), ib(0));
        assert_eq!(simplify_expr(&(ib(7) % ib(4)), &ctx), ib(3));
        assert_eq!(simplify_expr(&(ib(8) / ib(4)), &ctx), ib(2));
    }

    #[test]
    fn collects_like_terms() {
        let ctx = Context::new();
        // (i + i) - 2*i == 0
        let e = (var("i") + var("i")) - ib(2) * var("i");
        assert_eq!(simplify_expr(&e, &ctx), ib(0));
        // 8*io + ii + 8 - 8  ->  8*io + ii (canonical ordering may differ)
        let e = ib(8) * var("io") + var("ii") + ib(8) - ib(8);
        let s = simplify_expr(&e, &ctx);
        assert!(
            crate::linear::provably_equal(&s, &(ib(8) * var("io") + var("ii"))),
            "{s}"
        );
        assert!(!s.to_string().contains('8') || !s.to_string().contains("- 8"));
    }

    #[test]
    fn cancels_division_with_range_facts() {
        let mut ctx = Context::new();
        ctx.push_iter(Sym::new("ii"), ib(0), ib(8));
        // (8*io + ii) / 8 == io
        let e = (ib(8) * var("io") + var("ii")) / ib(8);
        assert_eq!(simplify_expr(&e, &ctx), var("io"));
        // (8*io + ii) % 8 == ii
        let e = (ib(8) * var("io") + var("ii")) % ib(8);
        assert_eq!(simplify_expr(&e, &ctx), var("ii"));
    }

    #[test]
    fn division_not_cancelled_without_facts() {
        let ctx = Context::new();
        let e = (ib(8) * var("io") + var("ii")) / ib(8);
        // Without the range of ii the division must be preserved.
        assert!(matches!(
            simplify_expr(&e, &ctx),
            Expr::Bin { op: BinOp::Div, .. }
        ));
    }

    #[test]
    fn divisibility_from_asserts_cancels_mod() {
        let mut ctx = Context::new();
        ctx.add_fact(&Expr::eq_(Expr::modulo(var("M"), ib(8)), ib(0)));
        assert_eq!(simplify_expr(&(var("M") % ib(8)), &ctx), ib(0));
    }

    #[test]
    fn predicates_decided_by_ranges() {
        let mut ctx = Context::new();
        ctx.push_iter(Sym::new("i"), ib(0), ib(8));
        assert_eq!(
            simplify_predicate(&Expr::lt(var("i"), ib(8)), &ctx),
            Some(true)
        );
        assert_eq!(simplify_predicate(&Expr::lt(var("i"), ib(4)), &ctx), None);
        assert_eq!(
            simplify_predicate(&Expr::lt(var("i"), ib(0)), &ctx),
            Some(false)
        );
        assert_eq!(
            simplify_predicate(&Expr::eq_(ib(0), ib(0)), &ctx),
            Some(true)
        );
    }

    #[test]
    fn binding_substitution() {
        let ctx = Context::new();
        let e = var("i") * ib(4) + ib(1);
        assert_eq!(simplify_with_binding(&e, &Sym::new("i"), 3, &ctx), ib(13));
    }
}
