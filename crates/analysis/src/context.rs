//! Analysis contexts: facts about symbols in scope.
//!
//! A [`Context`] gathers the information the safety checks need:
//!
//! * divisibility facts harvested from procedure assertions
//!   (`assert M % 8 == 0`),
//! * lower bounds from assertions (`assert N >= 1`) and the `size`
//!   convention (size arguments are positive),
//! * iterator ranges `lo <= i < hi` from enclosing loops,
//! * upper-bound facts from assertions (`assert N <= 88`) used by the
//!   skinny-matrix schedules.

use crate::linear::LinExpr;
use exo_ir::{ArgKind, BinOp, Expr, Proc, Step, Stmt, Sym};
use std::collections::HashMap;

/// A symbolic iterator range `lo <= iter < hi`.
#[derive(Clone, Debug, PartialEq)]
pub struct IterRange {
    /// Inclusive lower bound.
    pub lo: Expr,
    /// Exclusive upper bound.
    pub hi: Expr,
}

/// Facts available at a given point in a procedure.
#[derive(Clone, Debug, Default)]
pub struct Context {
    /// `expr % k == 0` facts, keyed by the printed form of the expression.
    divisibility: Vec<(LinExpr, i64)>,
    /// Known constant lower bounds per symbol (inclusive).
    lower_bounds: HashMap<Sym, i64>,
    /// Known constant upper bounds per symbol (inclusive).
    upper_bounds: HashMap<Sym, i64>,
    /// Iterator ranges of enclosing loops, innermost last.
    iter_ranges: Vec<(Sym, IterRange)>,
}

impl Context {
    /// An empty context.
    pub fn new() -> Self {
        Context::default()
    }

    /// Builds the context visible at the statement addressed by `path`
    /// inside `proc`: procedure-level assertions plus the ranges of every
    /// enclosing loop.
    pub fn at(proc: &Proc, path: &[Step]) -> Self {
        let mut ctx = Context::from_proc(proc);
        // Walk down the path, recording loop iterator ranges.
        let mut stmts: &[Stmt] = proc.body().stmts();
        for step in path {
            let idx = step.index();
            let Some(stmt) = stmts.get(idx) else { break };
            if let Stmt::For { iter, lo, hi, .. } = stmt {
                ctx.push_iter(iter.clone(), lo.clone(), hi.clone());
            }
            stmts = match (stmt, step) {
                (Stmt::For { body, .. }, Step::Body(_)) => body.stmts(),
                (Stmt::If { then_body, .. }, Step::Body(_)) => then_body.stmts(),
                (Stmt::If { else_body, .. }, Step::Else(_)) => else_body.stmts(),
                _ => &[],
            };
        }
        ctx
    }

    /// Builds a context from a procedure's signature and assertions only.
    pub fn from_proc(proc: &Proc) -> Self {
        let mut ctx = Context::new();
        for arg in proc.args() {
            if matches!(arg.kind, ArgKind::Size) {
                // `size` arguments are positive by convention.
                ctx.lower_bounds.insert(arg.name.clone(), 1);
            }
        }
        for pred in proc.preds() {
            ctx.add_fact(pred);
        }
        ctx
    }

    /// Records a single assertion.
    pub fn add_fact(&mut self, pred: &Expr) {
        match pred {
            Expr::Bin {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                self.add_fact(lhs);
                self.add_fact(rhs);
            }
            Expr::Bin {
                op: BinOp::Eq,
                lhs,
                rhs,
            } => {
                // `e % k == 0`
                if let (
                    Expr::Bin {
                        op: BinOp::Mod,
                        lhs: e,
                        rhs: k,
                    },
                    Expr::Int(0),
                ) = (lhs.as_ref(), rhs.as_ref())
                {
                    if let Expr::Int(kv) = k.as_ref() {
                        self.divisibility.push((LinExpr::from_expr(e), *kv));
                    }
                }
            }
            Expr::Bin {
                op: BinOp::Ge,
                lhs,
                rhs,
            } => {
                if let (Expr::Var(s), Expr::Int(v)) = (lhs.as_ref(), rhs.as_ref()) {
                    let entry = self.lower_bounds.entry(s.clone()).or_insert(*v);
                    *entry = (*entry).max(*v);
                }
            }
            Expr::Bin {
                op: BinOp::Gt,
                lhs,
                rhs,
            } => {
                if let (Expr::Var(s), Expr::Int(v)) = (lhs.as_ref(), rhs.as_ref()) {
                    let entry = self.lower_bounds.entry(s.clone()).or_insert(*v + 1);
                    *entry = (*entry).max(*v + 1);
                }
            }
            Expr::Bin {
                op: BinOp::Le,
                lhs,
                rhs,
            } => {
                if let (Expr::Var(s), Expr::Int(v)) = (lhs.as_ref(), rhs.as_ref()) {
                    let entry = self.upper_bounds.entry(s.clone()).or_insert(*v);
                    *entry = (*entry).min(*v);
                }
            }
            Expr::Bin {
                op: BinOp::Lt,
                lhs,
                rhs,
            } => {
                if let (Expr::Var(s), Expr::Int(v)) = (lhs.as_ref(), rhs.as_ref()) {
                    let entry = self.upper_bounds.entry(s.clone()).or_insert(*v - 1);
                    *entry = (*entry).min(*v - 1);
                }
            }
            _ => {}
        }
    }

    /// Pushes an enclosing loop's iterator range.
    pub fn push_iter(&mut self, iter: Sym, lo: Expr, hi: Expr) {
        match &lo {
            Expr::Int(v) => {
                self.lower_bounds.insert(iter.clone(), *v);
            }
            Expr::Var(s) => {
                if let Some(lb) = self.lower_bounds.get(s).copied() {
                    self.lower_bounds.insert(iter.clone(), lb);
                }
            }
            _ => {}
        }
        match &hi {
            Expr::Int(v) => {
                self.upper_bounds.insert(iter.clone(), *v - 1);
            }
            Expr::Var(s) => {
                if let Some(ub) = self.upper_bounds.get(s).copied() {
                    self.upper_bounds.insert(iter.clone(), ub - 1);
                }
            }
            _ => {}
        }
        self.iter_ranges.push((iter, IterRange { lo, hi }));
    }

    /// The range of an in-scope iterator, if known.
    pub fn iter_range(&self, iter: &Sym) -> Option<&IterRange> {
        self.iter_ranges
            .iter()
            .rev()
            .find(|(s, _)| s == iter)
            .map(|(_, r)| r)
    }

    /// All in-scope iterators, outermost first.
    pub fn iterators(&self) -> Vec<Sym> {
        self.iter_ranges.iter().map(|(s, _)| s.clone()).collect()
    }

    /// Constant lower bound of a symbol (inclusive), if known.
    pub fn lower_bound(&self, sym: &Sym) -> Option<i64> {
        self.lower_bounds.get(sym).copied()
    }

    /// Constant upper bound of a symbol (inclusive), if known.
    pub fn upper_bound(&self, sym: &Sym) -> Option<i64> {
        self.upper_bounds.get(sym).copied()
    }

    /// Whether `expr` is provably divisible by `k`: either every affine
    /// coefficient is a multiple of `k`, or the residue matches a recorded
    /// divisibility fact.
    pub fn divides(&self, expr: &Expr, k: i64) -> bool {
        if k == 0 {
            return false;
        }
        let lin = LinExpr::from_expr(expr);
        if lin.divisible_by(k) {
            return true;
        }
        // Try subtracting each known `fact % k' == 0` with k' a multiple of
        // k, scaled so the remainder becomes trivially divisible.
        for (fact, fk) in &self.divisibility {
            if fk % k != 0 {
                continue;
            }
            // expr - m*fact divisible by k for some small m?
            for m in [-4i64, -3, -2, -1, 1, 2, 3, 4] {
                if lin.sub(&fact.scale(m)).divisible_by(k) {
                    return true;
                }
            }
        }
        false
    }

    /// Whether the loop `for iter in seq(lo, hi)` is provably non-empty.
    pub fn loop_nonempty(&self, lo: &Expr, hi: &Expr) -> bool {
        let diff = LinExpr::from_expr(hi).sub(&LinExpr::from_expr(lo));
        if let Some(c) = diff.as_constant() {
            return c > 0;
        }
        // `hi - lo` reduces to a single positive-lower-bounded symbol.
        if diff.constant >= 0 && diff.terms.len() == 1 {
            if let Some((crate::linear::Atom::Var(s), coeff)) =
                diff.terms.iter().next().map(|(a, c)| (a.clone(), *c))
            {
                if coeff > 0 {
                    if let Some(lb) = self.lower_bound(&s) {
                        return coeff * lb + diff.constant > 0;
                    }
                }
            }
        }
        false
    }

    /// Whether `a <= b` is provable.
    pub fn proves_le(&self, a: &Expr, b: &Expr) -> bool {
        let diff = LinExpr::from_expr(b).sub(&LinExpr::from_expr(a));
        if let Some(c) = diff.as_constant() {
            return c >= 0;
        }
        // Single symbol with a known bound.
        if diff.terms.len() == 1 {
            let Some((atom, coeff)) = diff.terms.iter().next().map(|(a, c)| (a.clone(), *c)) else {
                return false;
            };
            if let crate::linear::Atom::Var(s) = atom {
                if coeff > 0 {
                    if let Some(lb) = self.lower_bound(&s) {
                        return coeff * lb + diff.constant >= 0;
                    }
                } else if let Some(ub) = self.upper_bound(&s) {
                    return coeff * ub + diff.constant >= 0;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_ir::{ib, var, DataType, Mem, ProcBuilder};

    fn gemv() -> Proc {
        ProcBuilder::new("gemv")
            .size_arg("M")
            .size_arg("N")
            .tensor_arg("A", DataType::F32, vec![var("M"), var("N")], Mem::Dram)
            .assert_(Expr::eq_(Expr::modulo(var("M"), ib(8)), ib(0)))
            .assert_(Expr::le(var("N"), ib(88)))
            .for_("i", ib(0), var("M"), |b| {
                b.for_("j", ib(0), var("N"), |b| {
                    b.pass();
                });
            })
            .build()
    }

    #[test]
    fn harvests_divisibility_from_asserts() {
        let ctx = Context::from_proc(&gemv());
        assert!(ctx.divides(&var("M"), 8));
        assert!(ctx.divides(&var("M"), 4));
        assert!(ctx.divides(&var("M"), 2));
        assert!(!ctx.divides(&var("N"), 8));
        assert!(ctx.divides(&(var("M") + ib(16)), 8));
        assert!(!ctx.divides(&(var("M") + ib(3)), 8));
    }

    #[test]
    fn size_args_are_positive() {
        let ctx = Context::from_proc(&gemv());
        assert_eq!(ctx.lower_bound(&Sym::new("M")), Some(1));
        assert!(ctx.loop_nonempty(&ib(0), &var("M")));
        assert!(!ctx.loop_nonempty(&ib(0), &ib(0)));
        assert!(ctx.loop_nonempty(&ib(0), &ib(3)));
    }

    #[test]
    fn upper_bounds_from_asserts() {
        let ctx = Context::from_proc(&gemv());
        assert_eq!(ctx.upper_bound(&Sym::new("N")), Some(88));
        assert!(ctx.proves_le(&var("N"), &ib(88)));
        assert!(ctx.proves_le(&var("N"), &ib(100)));
        assert!(!ctx.proves_le(&var("N"), &ib(50)));
        assert!(ctx.proves_le(&ib(2), &ib(4)));
    }

    #[test]
    fn context_at_records_enclosing_loop_ranges() {
        let p = gemv();
        let ctx = Context::at(&p, &[Step::Body(0), Step::Body(0), Step::Body(0)]);
        let iters = ctx.iterators();
        assert_eq!(iters, vec![Sym::new("i"), Sym::new("j")]);
        let ri = ctx.iter_range(&Sym::new("i")).unwrap();
        assert_eq!(ri.lo, ib(0));
        assert_eq!(ri.hi, var("M"));
        assert_eq!(ctx.lower_bound(&Sym::new("i")), Some(0));
    }
}
