//! Read/write/reduce effect sets of statements and blocks.

use exo_ir::{Expr, Stmt, Sym, WAccess};
use std::collections::BTreeSet;

/// One buffer access: the buffer, its index expressions, and the loop
/// iterators bound *within the analyzed region* that are in scope at the
/// access site.
#[derive(Clone, Debug, PartialEq)]
pub struct Access {
    /// Accessed buffer.
    pub buf: Sym,
    /// Index expressions, one per dimension (empty for scalars and for
    /// whole-buffer accesses such as call-argument windows).
    pub idx: Vec<Expr>,
    /// Iterators bound inside the analyzed region at this access.
    pub iters: Vec<Sym>,
    /// Whether the access covers an unknown region of the buffer (window
    /// arguments to calls, reads with non-affine indices).
    pub whole_buffer: bool,
}

impl Access {
    fn point(buf: Sym, idx: Vec<Expr>, iters: &[Sym]) -> Self {
        Access {
            buf,
            idx,
            iters: iters.to_vec(),
            whole_buffer: false,
        }
    }

    fn whole(buf: Sym, iters: &[Sym]) -> Self {
        Access {
            buf,
            idx: Vec::new(),
            iters: iters.to_vec(),
            whole_buffer: true,
        }
    }
}

/// The effects of a statement or block.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Effects {
    /// Buffer reads.
    pub reads: Vec<Access>,
    /// Buffer overwrites (assignments).
    pub writes: Vec<Access>,
    /// Buffer reductions (`+=`).
    pub reduces: Vec<Access>,
    /// Configuration fields written, as `(config, field)` pairs.
    pub config_writes: Vec<(Sym, String)>,
    /// Configuration fields read.
    pub config_reads: Vec<(Sym, String)>,
    /// Whether the region contains calls (treated conservatively).
    pub has_calls: bool,
    /// Buffers allocated within the region.
    pub allocs: Vec<Sym>,
}

impl Effects {
    /// Effects of a single statement.
    pub fn of_stmt(stmt: &Stmt) -> Effects {
        let mut eff = Effects::default();
        collect(stmt, &mut Vec::new(), &mut eff);
        eff
    }

    /// Combined effects of a sequence of statements.
    pub fn of_stmts<'a>(stmts: impl IntoIterator<Item = &'a Stmt>) -> Effects {
        let mut eff = Effects::default();
        for s in stmts {
            collect(s, &mut Vec::new(), &mut eff);
        }
        eff
    }

    /// Every buffer written (assigned or reduced).
    pub fn buffers_written(&self) -> BTreeSet<Sym> {
        self.writes
            .iter()
            .chain(self.reduces.iter())
            .map(|a| a.buf.clone())
            .collect()
    }

    /// Every buffer read.
    pub fn buffers_read(&self) -> BTreeSet<Sym> {
        self.reads.iter().map(|a| a.buf.clone()).collect()
    }

    /// Every access (read, write or reduce) to the given buffer.
    pub fn accesses_to(&self, buf: &Sym) -> Vec<&Access> {
        self.reads
            .iter()
            .chain(self.writes.iter())
            .chain(self.reduces.iter())
            .filter(|a| &a.buf == buf)
            .collect()
    }

    /// Write and reduce accesses to the given buffer.
    pub fn writes_to(&self, buf: &Sym) -> Vec<&Access> {
        self.writes
            .iter()
            .chain(self.reduces.iter())
            .filter(|a| &a.buf == buf)
            .collect()
    }

    /// Whether the region touches (reads or writes) the buffer at all.
    pub fn touches(&self, buf: &Sym) -> bool {
        !self.accesses_to(buf).is_empty()
    }
}

fn collect_expr(e: &Expr, iters: &[Sym], eff: &mut Effects) {
    match e {
        Expr::Read { buf, idx } => {
            eff.reads
                .push(Access::point(buf.clone(), idx.clone(), iters));
            for i in idx {
                collect_expr(i, iters, eff);
            }
        }
        Expr::Window { buf, idx } => {
            eff.reads.push(Access::whole(buf.clone(), iters));
            for w in idx {
                match w {
                    WAccess::Point(e) => collect_expr(e, iters, eff),
                    WAccess::Interval(lo, hi) => {
                        collect_expr(lo, iters, eff);
                        collect_expr(hi, iters, eff);
                    }
                }
            }
        }
        Expr::Bin { lhs, rhs, .. } => {
            collect_expr(lhs, iters, eff);
            collect_expr(rhs, iters, eff);
        }
        Expr::Un { arg, .. } => collect_expr(arg, iters, eff),
        Expr::ReadConfig { config, field } => {
            eff.config_reads.push((config.clone(), field.clone()));
        }
        _ => {}
    }
}

fn collect(stmt: &Stmt, iters: &mut Vec<Sym>, eff: &mut Effects) {
    match stmt {
        Stmt::Assign { buf, idx, rhs } => {
            eff.writes
                .push(Access::point(buf.clone(), idx.clone(), iters));
            for i in idx {
                collect_expr(i, iters, eff);
            }
            collect_expr(rhs, iters, eff);
        }
        Stmt::Reduce { buf, idx, rhs } => {
            eff.reduces
                .push(Access::point(buf.clone(), idx.clone(), iters));
            for i in idx {
                collect_expr(i, iters, eff);
            }
            collect_expr(rhs, iters, eff);
        }
        Stmt::Alloc { name, .. } => eff.allocs.push(name.clone()),
        Stmt::For {
            iter, lo, hi, body, ..
        } => {
            collect_expr(lo, iters, eff);
            collect_expr(hi, iters, eff);
            iters.push(iter.clone());
            for s in body.iter() {
                collect(s, iters, eff);
            }
            iters.pop();
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            collect_expr(cond, iters, eff);
            for s in then_body.iter().chain(else_body.iter()) {
                collect(s, iters, eff);
            }
        }
        Stmt::Call { args, .. } => {
            eff.has_calls = true;
            for a in args {
                // Window arguments may be written by the callee: record both.
                if let Expr::Window { buf, .. } = a {
                    eff.writes.push(Access::whole(buf.clone(), iters));
                }
                if let Expr::Var(buf) = a {
                    // Bare buffer arguments are conservatively writable too.
                    eff.writes.push(Access::whole(buf.clone(), iters));
                }
                collect_expr(a, iters, eff);
            }
        }
        Stmt::Pass => {}
        Stmt::WriteConfig {
            config,
            field,
            value,
        } => {
            eff.config_writes.push((config.clone(), field.clone()));
            collect_expr(value, iters, eff);
        }
        Stmt::WindowStmt { name, rhs } => {
            eff.allocs.push(name.clone());
            collect_expr(rhs, iters, eff);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_ir::{ib, read, var, Block, DataType, Mem};

    fn gemv_loop() -> Stmt {
        Stmt::For {
            iter: Sym::new("i"),
            lo: ib(0),
            hi: var("M"),
            body: Block::from_stmts(vec![Stmt::For {
                iter: Sym::new("j"),
                lo: ib(0),
                hi: var("N"),
                body: Block::from_stmts(vec![Stmt::Reduce {
                    buf: Sym::new("y"),
                    idx: vec![var("i")],
                    rhs: read("A", vec![var("i"), var("j")]) * read("x", vec![var("j")]),
                }]),
                parallel: false,
            }]),
            parallel: false,
        }
    }

    #[test]
    fn collects_reads_reduces_and_iterators() {
        let eff = Effects::of_stmt(&gemv_loop());
        assert_eq!(eff.reduces.len(), 1);
        assert_eq!(eff.reduces[0].buf, Sym::new("y"));
        assert_eq!(eff.reduces[0].iters, vec![Sym::new("i"), Sym::new("j")]);
        assert_eq!(
            eff.buffers_read(),
            [Sym::new("A"), Sym::new("x")].into_iter().collect()
        );
        assert_eq!(eff.buffers_written(), [Sym::new("y")].into_iter().collect());
        assert!(!eff.has_calls);
    }

    #[test]
    fn call_windows_count_as_whole_buffer_writes() {
        let call = Stmt::Call {
            proc: "mm512_loadu_ps".into(),
            args: vec![
                Expr::Window {
                    buf: Sym::new("dst"),
                    idx: vec![WAccess::Interval(ib(0), ib(16))],
                },
                Expr::Window {
                    buf: Sym::new("src"),
                    idx: vec![WAccess::Interval(ib(0), ib(16))],
                },
            ],
        };
        let eff = Effects::of_stmt(&call);
        assert!(eff.has_calls);
        assert!(eff.buffers_written().contains(&Sym::new("dst")));
        assert!(eff.buffers_written().contains(&Sym::new("src")));
        assert!(eff.writes.iter().all(|a| a.whole_buffer));
    }

    #[test]
    fn config_effects() {
        let s = Stmt::WriteConfig {
            config: Sym::new("cfg"),
            field: "stride".into(),
            value: ib(4),
        };
        let eff = Effects::of_stmt(&s);
        assert_eq!(
            eff.config_writes,
            vec![(Sym::new("cfg"), "stride".to_string())]
        );
        let r = Stmt::Assign {
            buf: Sym::new("x"),
            idx: vec![],
            rhs: Expr::ReadConfig {
                config: Sym::new("cfg"),
                field: "stride".into(),
            },
        };
        let eff = Effects::of_stmt(&r);
        assert_eq!(
            eff.config_reads,
            vec![(Sym::new("cfg"), "stride".to_string())]
        );
    }

    #[test]
    fn allocs_are_recorded() {
        let s = Stmt::Alloc {
            name: Sym::new("tmp"),
            ty: DataType::F32,
            dims: vec![ib(8)],
            mem: Mem::VecAvx2,
        };
        let eff = Effects::of_stmt(&s);
        assert_eq!(eff.allocs, vec![Sym::new("tmp")]);
    }

    #[test]
    fn accessors_filter_by_buffer() {
        let eff = Effects::of_stmt(&gemv_loop());
        assert_eq!(eff.accesses_to(&Sym::new("A")).len(), 1);
        assert_eq!(eff.writes_to(&Sym::new("y")).len(), 1);
        assert!(eff.touches(&Sym::new("x")));
        assert!(!eff.touches(&Sym::new("z")));
    }
}
