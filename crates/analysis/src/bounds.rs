//! Bounds inference: the per-buffer access-range analysis the paper's
//! Halide library implements in user space (§4).
//!
//! Given a scope (a statement, usually a loop) and a buffer, the inference
//! computes, per dimension, a symbolic window `[lo, hi)` covering every
//! access to the buffer inside the scope. Iterators bound *inside* the
//! scope are eliminated by substituting their extreme values; iterators
//! and sizes free in the scope remain symbolic — exactly the behaviour the
//! paper describes for the `io`-loop example:
//!
//! ```text
//! for io in seq(0, N / 32):
//!     # arr is accessed within [32 * io : 32 * io + 34]
//!     for ii in seq(0, 32):
//!         x = arr[32*io + ii] + arr[32*io + ii + 1] + arr[32*io + ii + 2]
//! ```

use crate::context::Context;
use crate::linear::LinExpr;
use crate::simplify::simplify_expr;
use exo_ir::{ib, substitute_expr, Expr, Stmt, Sym};

/// The inferred access window of a buffer within a scope.
#[derive(Clone, Debug, PartialEq)]
pub struct BufferBounds {
    /// The buffer the bounds describe.
    pub buf: Sym,
    /// Per dimension: inclusive lower bound and exclusive upper bound.
    pub dims: Vec<(Expr, Expr)>,
}

impl BufferBounds {
    /// The extent (`hi - lo`) of dimension `d`, simplified.
    pub fn extent(&self, d: usize, ctx: &Context) -> Expr {
        let (lo, hi) = &self.dims[d];
        simplify_expr(&(hi.clone() - lo.clone()), ctx)
    }
}

struct AccessSite {
    idx: Vec<Expr>,
    /// Iterators bound within the scope at this access, with their ranges.
    iters: Vec<(Sym, Expr, Expr)>,
}

fn gather(stmt: &Stmt, buf: &Sym, iters: &mut Vec<(Sym, Expr, Expr)>, out: &mut Vec<AccessSite>) {
    let record_expr = |e: &Expr, iters: &Vec<(Sym, Expr, Expr)>, out: &mut Vec<AccessSite>| {
        collect_reads_of(e, buf, iters, out);
    };
    match stmt {
        Stmt::Assign { buf: b, idx, rhs } | Stmt::Reduce { buf: b, idx, rhs } => {
            if b == buf {
                out.push(AccessSite {
                    idx: idx.clone(),
                    iters: iters.clone(),
                });
            }
            for i in idx {
                record_expr(i, iters, out);
            }
            record_expr(rhs, iters, out);
        }
        Stmt::For {
            iter, lo, hi, body, ..
        } => {
            iters.push((iter.clone(), lo.clone(), hi.clone()));
            for s in body.iter() {
                gather(s, buf, iters, out);
            }
            iters.pop();
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            record_expr(cond, iters, out);
            for s in then_body.iter().chain(else_body.iter()) {
                gather(s, buf, iters, out);
            }
        }
        Stmt::Call { args, .. } => {
            for a in args {
                record_expr(a, iters, out);
            }
        }
        Stmt::WriteConfig { value, .. } => record_expr(value, iters, out),
        Stmt::WindowStmt { rhs, .. } => record_expr(rhs, iters, out),
        Stmt::Alloc { .. } | Stmt::Pass => {}
    }
}

fn collect_reads_of(e: &Expr, buf: &Sym, iters: &[(Sym, Expr, Expr)], out: &mut Vec<AccessSite>) {
    match e {
        Expr::Read { buf: b, idx } => {
            if b == buf {
                out.push(AccessSite {
                    idx: idx.clone(),
                    iters: iters.to_vec(),
                });
            }
            for i in idx {
                collect_reads_of(i, buf, iters, out);
            }
        }
        Expr::Bin { lhs, rhs, .. } => {
            collect_reads_of(lhs, buf, iters, out);
            collect_reads_of(rhs, buf, iters, out);
        }
        Expr::Un { arg, .. } => collect_reads_of(arg, buf, iters, out),
        _ => {}
    }
}

/// Substitutes each in-scope bound iterator by the value that extremizes an
/// affine index expression: its lower bound when minimizing with a positive
/// coefficient, its upper bound (`hi - 1`) otherwise.
fn extremize(idx: &Expr, iters: &[(Sym, Expr, Expr)], minimize: bool, ctx: &Context) -> Expr {
    let lin = LinExpr::from_expr(idx);
    let mut out = idx.clone();
    for (iter, lo, hi) in iters {
        let coeff = lin.coeff_of(iter);
        if coeff == 0 && !lin.mentions(iter) {
            continue;
        }
        let take_lo = (coeff >= 0) == minimize;
        let value = if take_lo {
            lo.clone()
        } else {
            hi.clone() - ib(1)
        };
        out = substitute_expr(out, iter, &value);
    }
    simplify_expr(&out, ctx)
}

/// Why [`infer_bounds`] could not produce an access window, so scheduling
/// errors can say *what* defeated the inference rather than a bare "cannot
/// infer bounds".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoundsFailure {
    /// The buffer is never accessed inside the scope.
    NotAccessed,
    /// The buffer is accessed with inconsistent ranks and some access
    /// supplies no index expression for this dimension.
    MissingDimension(usize),
}

impl std::fmt::Display for BoundsFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundsFailure::NotAccessed => write!(f, "the buffer is not accessed in the scope"),
            BoundsFailure::MissingDimension(d) => write!(
                f,
                "accesses have inconsistent ranks: no access supplies an index for dimension {d}"
            ),
        }
    }
}

/// Infers the access bounds of `buf` within the statement `scope`.
///
/// Returns a [`BoundsFailure`] describing why inference gave up when it
/// does (never silently). The analysis is exact for affine indices;
/// non-affine indices fall back to using the raw expression for both
/// bounds (conservatively tight to that single access).
pub fn infer_bounds(scope: &Stmt, buf: &Sym, ctx: &Context) -> Result<BufferBounds, BoundsFailure> {
    let mut sites = Vec::new();
    gather(scope, buf, &mut Vec::new(), &mut sites);
    if sites.is_empty() {
        return Err(BoundsFailure::NotAccessed);
    }
    let ndims = sites.iter().map(|s| s.idx.len()).max().unwrap_or(0);
    let mut dims = Vec::with_capacity(ndims);
    for d in 0..ndims {
        let mut lo: Option<Expr> = None;
        let mut hi: Option<Expr> = None;
        for site in &sites {
            let Some(idx) = site.idx.get(d) else { continue };
            let site_lo = extremize(idx, &site.iters, true, ctx);
            let site_hi = simplify_expr(&(extremize(idx, &site.iters, false, ctx) + ib(1)), ctx);
            lo = Some(match lo {
                None => site_lo,
                Some(prev) => symbolic_min(prev, site_lo, ctx),
            });
            hi = Some(match hi {
                None => site_hi,
                Some(prev) => symbolic_max(prev, site_hi, ctx),
            });
        }
        match (lo, hi) {
            (Some(lo), Some(hi)) => dims.push((lo, hi)),
            _ => return Err(BoundsFailure::MissingDimension(d)),
        }
    }
    Ok(BufferBounds {
        buf: buf.clone(),
        dims,
    })
}

fn symbolic_min(a: Expr, b: Expr, ctx: &Context) -> Expr {
    if ctx.proves_le(&a, &b) || provably_le_by_constant(&a, &b) {
        a
    } else if ctx.proves_le(&b, &a) || provably_le_by_constant(&b, &a) {
        b
    } else {
        // Undecidable: keep the first (deterministic, documented as the
        // conservative fallback).
        a
    }
}

fn symbolic_max(a: Expr, b: Expr, ctx: &Context) -> Expr {
    if ctx.proves_le(&a, &b) || provably_le_by_constant(&a, &b) {
        b
    } else {
        // Either `b <= a` is proven or the comparison is undecidable; in
        // both cases keep `a` (the documented conservative fallback).
        a
    }
}

fn provably_le_by_constant(a: &Expr, b: &Expr) -> bool {
    LinExpr::from_expr(b)
        .sub(&LinExpr::from_expr(a))
        .as_constant()
        .map(|c| c >= 0)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_ir::{read, var, Block};

    /// The paper's §4 example:
    /// for ii in seq(0, 32):
    ///     x = arr[32*io + ii] + arr[32*io + ii + 1] + arr[32*io + ii + 2]
    fn paper_example() -> Stmt {
        let base = ib(32) * var("io") + var("ii");
        Stmt::For {
            iter: Sym::new("ii"),
            lo: ib(0),
            hi: ib(32),
            body: Block::from_stmts(vec![Stmt::Assign {
                buf: Sym::new("x"),
                idx: vec![],
                rhs: read("arr", vec![base.clone()])
                    + read("arr", vec![base.clone() + ib(1)])
                    + read("arr", vec![base + ib(2)]),
            }]),
            parallel: false,
        }
    }

    #[test]
    fn reproduces_the_paper_io_loop_bounds() {
        let ctx = Context::new();
        let bounds = infer_bounds(&paper_example(), &Sym::new("arr"), &ctx).unwrap();
        assert_eq!(bounds.dims.len(), 1);
        let (lo, hi) = &bounds.dims[0];
        assert!(
            crate::linear::provably_equal(lo, &(ib(32) * var("io"))),
            "{lo}"
        );
        assert!(
            crate::linear::provably_equal(hi, &(ib(32) * var("io") + ib(34))),
            "{hi}"
        );
        assert_eq!(bounds.extent(0, &ctx), ib(34));
    }

    #[test]
    fn write_accesses_are_included() {
        let ctx = Context::new();
        let scope = Stmt::For {
            iter: Sym::new("i"),
            lo: ib(0),
            hi: var("n"),
            body: Block::from_stmts(vec![Stmt::Assign {
                buf: Sym::new("y"),
                idx: vec![var("i") + ib(3)],
                rhs: ib(0),
            }]),
            parallel: false,
        };
        let bounds = infer_bounds(&scope, &Sym::new("y"), &ctx).unwrap();
        let (lo, hi) = &bounds.dims[0];
        assert_eq!(lo.to_string(), "3");
        assert_eq!(hi.to_string(), "n + 3");
    }

    #[test]
    fn missing_buffer_reports_not_accessed() {
        let ctx = Context::new();
        assert_eq!(
            infer_bounds(&paper_example(), &Sym::new("zzz"), &ctx),
            Err(BoundsFailure::NotAccessed)
        );
    }

    #[test]
    fn two_dimensional_blur_window() {
        // for yi in seq(0, 34): for xi in seq(0, 256):
        //     blur_y[yi, xi] = blur_x[yi, xi] + blur_x[yi+1, xi] + blur_x[yi+2, xi]
        let ctx = Context::new();
        let body = Stmt::Assign {
            buf: Sym::new("blur_y"),
            idx: vec![var("yi"), var("xi")],
            rhs: read("blur_x", vec![var("yi"), var("xi")])
                + read("blur_x", vec![var("yi") + ib(1), var("xi")])
                + read("blur_x", vec![var("yi") + ib(2), var("xi")]),
        };
        let scope = Stmt::For {
            iter: Sym::new("yi"),
            lo: ib(0),
            hi: ib(32),
            body: Block::from_stmts(vec![Stmt::For {
                iter: Sym::new("xi"),
                lo: ib(0),
                hi: ib(256),
                body: Block::from_stmts(vec![body]),
                parallel: false,
            }]),
            parallel: false,
        };
        let bounds = infer_bounds(&scope, &Sym::new("blur_x"), &ctx).unwrap();
        assert_eq!(bounds.dims[0].0.to_string(), "0");
        assert_eq!(bounds.dims[0].1.to_string(), "34");
        assert_eq!(bounds.dims[1].1.to_string(), "256");
        let by = infer_bounds(&scope, &Sym::new("blur_y"), &ctx).unwrap();
        assert_eq!(by.dims[0].1.to_string(), "32");
    }
}
