//! Commutativity, dependence, idempotence and invariance checks.
//!
//! These are the checks the scheduling primitives of `exo-core` use to
//! guarantee functional equivalence (the "Safety conditions" column of the
//! paper's Appendix A). All checks are conservative: a `false` answer means
//! "could not prove safe", not "definitely unsafe".

use crate::context::Context;
use crate::effects::{Access, Effects};
use crate::linear::LinExpr;
use exo_ir::{for_each_expr, Expr, Stmt, Sym};
use std::collections::BTreeSet;

/// Whether a per-dimension index difference is provably nonzero under
/// `ctx`: a nonzero constant, a residue class that excludes zero (all
/// coefficients share a divisor `g` the constant is not a multiple of), or
/// a value range that excludes zero.
fn diff_provably_nonzero(diff: &LinExpr, ctx: &Context) -> bool {
    if let Some(c) = diff.as_constant() {
        return c != 0;
    }
    // Residue class: diff = g·(...) + c with c % g != 0 is never zero.
    // This proves `a[2*i]` and `a[2*i + 1]` disjoint for *all* i, i'.
    let g = diff.terms.values().fold(0i64, |acc, c| gcd(acc, c.abs()));
    if g > 1 && diff.constant % g != 0 {
        return true;
    }
    // Interval: every atom has known constant bounds and 0 is outside.
    let bound = |lower: bool| -> Option<i64> {
        let mut acc = diff.constant;
        for (atom, coeff) in &diff.terms {
            let crate::linear::Atom::Var(s) = atom else {
                return None;
            };
            let b = if (*coeff > 0) == lower {
                ctx.lower_bound(s)?
            } else {
                ctx.upper_bound(s)?
            };
            acc += coeff * b;
        }
        Some(acc)
    };
    matches!(bound(true), Some(lo) if lo > 0) || matches!(bound(false), Some(hi) if hi < 0)
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Whether two accesses may refer to the same buffer element.
///
/// Returns `false` (provably disjoint) only when some dimension's index
/// expressions provably differ: by a nonzero constant, by a nonzero
/// residue class, or by a `ctx`-derived value range excluding zero.
fn may_overlap(a: &Access, b: &Access, ctx: &Context) -> bool {
    if a.buf != b.buf {
        return false;
    }
    if a.whole_buffer || b.whole_buffer {
        return true;
    }
    if a.idx.len() != b.idx.len() {
        return true;
    }
    for (ia, ib) in a.idx.iter().zip(b.idx.iter()) {
        let diff = LinExpr::from_expr(ia).sub(&LinExpr::from_expr(ib));
        if diff_provably_nonzero(&diff, ctx) {
            return false;
        }
    }
    true
}

/// Whether two statements (or statement blocks, via their combined
/// effects) commute: executing them in either order yields the same state.
pub fn stmts_commute(a: &Effects, b: &Effects, ctx: &Context) -> bool {
    // Config state: any write/read or write/write collision on the same
    // field forbids reordering.
    for (c, f) in &a.config_writes {
        if b.config_writes.iter().any(|(c2, f2)| c2 == c && f2 == f)
            || b.config_reads.iter().any(|(c2, f2)| c2 == c && f2 == f)
        {
            return false;
        }
    }
    for (c, f) in &b.config_writes {
        if a.config_reads.iter().any(|(c2, f2)| c2 == c && f2 == f) {
            return false;
        }
    }
    // Write/write conflicts: assignments never commute with overlapping
    // writes; reductions commute with each other (addition commutes).
    for wa in &a.writes {
        for wb in b.writes.iter().chain(b.reduces.iter()) {
            if may_overlap(wa, wb, ctx) {
                return false;
            }
        }
    }
    for wa in &a.reduces {
        for wb in &b.writes {
            if may_overlap(wa, wb, ctx) {
                return false;
            }
        }
    }
    // Read/write conflicts in both directions (a reduce both reads and
    // writes its destination, but reduce-vs-reduce on the same location is
    // fine).
    for ra in &a.reads {
        for wb in b.writes.iter().chain(b.reduces.iter()) {
            if may_overlap(ra, wb, ctx) {
                return false;
            }
        }
    }
    for rb in &b.reads {
        for wa in a.writes.iter().chain(a.reduces.iter()) {
            if may_overlap(rb, wa, ctx) {
                return false;
            }
        }
    }
    true
}

/// Whether two accesses are provably disjoint across *distinct* iterations
/// of `iter`: some dimension's indices decompose as `s·iter + r` with the
/// same stride `s != 0` on both sides and a loop-invariant residual
/// difference `δ` that is either zero or not a multiple of `s` — then
/// `s·(i - i') = δ` has no solution with `i != i'`.
fn iteration_disjoint(iter: &Sym, a: &Access, b: &Access, ctx: &Context) -> bool {
    if a.whole_buffer || b.whole_buffer || a.idx.len() != b.idx.len() {
        return false;
    }
    let _ = ctx;
    for (ia, ib) in a.idx.iter().zip(b.idx.iter()) {
        let la = LinExpr::from_expr(ia);
        let lb = LinExpr::from_expr(ib);
        let s = la.coeff_of(iter);
        if s == 0 || lb.coeff_of(iter) != s {
            continue;
        }
        // Neither side may vary with an iterator bound *inside* the loop
        // body: those take arbitrary values on each side of the comparison,
        // so they must be checked before subtraction (same-named body
        // iterators would cancel, e.g. `y[i + j]` vs itself over `i`).
        let body_invariant = |l: &LinExpr| {
            a.iters
                .iter()
                .chain(b.iters.iter())
                .filter(|s2| *s2 != iter)
                .all(|s2| !l.mentions(s2))
        };
        if !body_invariant(&la) || !body_invariant(&lb) {
            continue;
        }
        let mut delta = la.sub(&lb);
        delta.terms.remove(&crate::linear::Atom::Var(iter.clone()));
        // `iter` must not survive inside an opaque term of the residual.
        if delta.mentions(iter) {
            continue;
        }
        if delta.is_zero() {
            return true;
        }
        if let Some(c) = delta.as_constant() {
            if c % s != 0 {
                return true;
            }
        }
    }
    false
}

/// Whether the iterations of `for iter in ...: body` may execute in any
/// order (no loop-carried read-after-write or write-after-write
/// dependencies). Used by `parallelize_loop` and the verifier's
/// parallel-loop race check.
///
/// The test is index-level: two accesses to the same buffer are fine when
/// [`iteration_disjoint`] proves distinct iterations touch distinct
/// elements (e.g. `C[i, j]` over `i`, or the strided pair `a[2*i]` /
/// `a[2*i + 1]`). Buffers whose every access in the body is a *reduce* are
/// always fine: reductions commute, so the loop is parallelizable as a
/// reduction even when the destination index is loop-invariant (the gemv
/// accumulator shape `y[i] += A[i, j] * x[j]` over `j`).
pub fn loop_is_parallelizable(iter: &Sym, body_effects: &Effects, ctx: &Context) -> bool {
    if body_effects.has_calls {
        return false;
    }
    if !body_effects.config_writes.is_empty() {
        return false;
    }
    for buf in body_effects.buffers_written() {
        // Skip buffers allocated inside the body: they are private per
        // iteration.
        if body_effects.allocs.contains(&buf) {
            continue;
        }
        let is = |list: &[Access]| -> Vec<Access> {
            list.iter().filter(|a| a.buf == buf).cloned().collect()
        };
        let reads = is(&body_effects.reads);
        let writes = is(&body_effects.writes);
        let reduces = is(&body_effects.reduces);
        // Reduce-only buffers: all iterations commute (accumulation order
        // is irrelevant), regardless of indexing.
        if writes.is_empty() && reads.is_empty() {
            continue;
        }
        // Every (write, access) pair must be provably disjoint across
        // distinct iterations; reduce-vs-reduce pairs commute and are
        // exempt.
        let writers: Vec<(&Access, bool)> = writes
            .iter()
            .map(|a| (a, false))
            .chain(reduces.iter().map(|a| (a, true)))
            .collect();
        let others: Vec<(&Access, bool)> = reads
            .iter()
            .map(|a| (a, false))
            .chain(writers.iter().copied())
            .collect();
        for (w, w_red) in &writers {
            for (o, o_red) in &others {
                if *w_red && *o_red {
                    continue;
                }
                if !iteration_disjoint(iter, w, o, ctx) {
                    return false;
                }
            }
        }
    }
    true
}

/// Whether executing the statements twice in a row is equivalent to
/// executing them once. Used by `remove_loop`, `add_loop` and
/// `divide_with_recompute`.
pub fn is_idempotent<'a>(stmts: impl IntoIterator<Item = &'a Stmt> + Clone) -> bool {
    let eff = Effects::of_stmts(stmts.clone());
    if eff.has_calls || !eff.config_writes.is_empty() || !eff.reduces.is_empty() {
        return false;
    }
    // Pure assignments are idempotent as long as no assignment reads a
    // buffer that the block also writes (otherwise the second execution
    // would see different inputs).
    let written = eff.buffers_written();
    for r in &eff.reads {
        if written.contains(&r.buf) {
            return false;
        }
    }
    true
}

/// Whether any expression in the statements mentions `sym`.
pub fn body_depends_on<'a>(stmts: impl IntoIterator<Item = &'a Stmt>, sym: &Sym) -> bool {
    let mut found = false;
    for s in stmts {
        if let Stmt::For { iter, .. } = s {
            if iter == sym {
                // Shadowed; occurrences below refer to the inner binding.
                continue;
            }
        }
        for_each_expr(s, &mut |e: &Expr| {
            if e.mentions(sym) {
                found = true;
            }
        });
        if found {
            return true;
        }
    }
    false
}

/// Whether every *write* in the body indexes the written buffer with an
/// expression that depends on `iter`. (When true, distinct iterations
/// write distinct locations.)
pub fn writes_depend_on_iter(body_effects: &Effects, iter: &Sym) -> bool {
    body_effects
        .writes
        .iter()
        .chain(body_effects.reduces.iter())
        .all(|w| {
            !w.whole_buffer
                && w.idx
                    .iter()
                    .any(|e| LinExpr::from_expr(e).coeff_of(iter) != 0)
        })
}

/// Names of buffers allocated directly or transitively in the statements.
pub fn alloc_names<'a>(stmts: impl IntoIterator<Item = &'a Stmt>) -> BTreeSet<Sym> {
    Effects::of_stmts(stmts).allocs.into_iter().collect()
}

/// Buffers written (assigned or reduced) in the statements.
pub fn buffers_written<'a>(stmts: impl IntoIterator<Item = &'a Stmt>) -> BTreeSet<Sym> {
    Effects::of_stmts(stmts).buffers_written()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_ir::{fb, ib, read, var, Block};

    fn assign(buf: &str, idx: Vec<Expr>, rhs: Expr) -> Stmt {
        Stmt::Assign {
            buf: Sym::new(buf),
            idx,
            rhs,
        }
    }

    fn reduce(buf: &str, idx: Vec<Expr>, rhs: Expr) -> Stmt {
        Stmt::Reduce {
            buf: Sym::new(buf),
            idx,
            rhs,
        }
    }

    #[test]
    fn disjoint_constant_offsets_commute() {
        let ctx = Context::new();
        let a = Effects::of_stmt(&assign("x", vec![ib(0)], fb(1.0)));
        let b = Effects::of_stmt(&assign("x", vec![ib(1)], fb(2.0)));
        assert!(stmts_commute(&a, &b, &ctx));
        let c = Effects::of_stmt(&assign("x", vec![ib(0)], fb(3.0)));
        assert!(!stmts_commute(&a, &c, &ctx));
    }

    #[test]
    fn reductions_commute_with_each_other_but_not_with_assignments() {
        let ctx = Context::new();
        let r1 = Effects::of_stmt(&reduce("acc", vec![], var("a")));
        let r2 = Effects::of_stmt(&reduce("acc", vec![], var("b")));
        assert!(stmts_commute(&r1, &r2, &ctx));
        let w = Effects::of_stmt(&assign("acc", vec![], fb(0.0)));
        assert!(!stmts_commute(&r1, &w, &ctx));
    }

    #[test]
    fn read_write_conflicts_block_commuting() {
        let ctx = Context::new();
        let producer = Effects::of_stmt(&assign("t", vec![var("i")], read("x", vec![var("i")])));
        let consumer = Effects::of_stmt(&assign("y", vec![var("i")], read("t", vec![var("i")])));
        assert!(!stmts_commute(&producer, &consumer, &ctx));
        // Independent buffers commute.
        let other = Effects::of_stmt(&assign("z", vec![var("i")], read("w", vec![var("i")])));
        assert!(stmts_commute(&producer, &other, &ctx));
    }

    #[test]
    fn config_state_blocks_commuting() {
        let ctx = Context::new();
        let wcfg = Effects::of_stmt(&Stmt::WriteConfig {
            config: Sym::new("cfg"),
            field: "stride".into(),
            value: ib(1),
        });
        let rcfg = Effects::of_stmt(&assign(
            "x",
            vec![],
            Expr::ReadConfig {
                config: Sym::new("cfg"),
                field: "stride".into(),
            },
        ));
        assert!(!stmts_commute(&wcfg, &rcfg, &ctx));
        assert!(!stmts_commute(&wcfg, &wcfg, &ctx));
    }

    #[test]
    fn parallelizable_loops() {
        let ctx = Context::new();
        // y[i] = x[i] : parallelizable
        let body = Effects::of_stmts(&[assign("y", vec![var("i")], read("x", vec![var("i")]))]);
        assert!(loop_is_parallelizable(&Sym::new("i"), &body, &ctx));
        // acc += x[i] : parallelizable *as a reduction* — every access to
        // `acc` is a reduce, and reductions commute.
        let body = Effects::of_stmts(&[reduce("acc", vec![], read("x", vec![var("i")]))]);
        assert!(loop_is_parallelizable(&Sym::new("i"), &body, &ctx));
        // acc = x[i] : NOT parallelizable (last-writer-wins assignment to a
        // loop-invariant location).
        let body = Effects::of_stmts(&[assign("acc", vec![], read("x", vec![var("i")]))]);
        assert!(!loop_is_parallelizable(&Sym::new("i"), &body, &ctx));
        // y[i] = y[i+1] : not parallelizable (offset read of written buffer)
        let body = Effects::of_stmts(&[assign(
            "y",
            vec![var("i")],
            read("y", vec![var("i") + ib(1)]),
        )]);
        assert!(!loop_is_parallelizable(&Sym::new("i"), &body, &ctx));
        // y[i] += A[i, j] * x[j]: over i the reduce is indexed by i; over j
        // it is the gemv accumulator shape — reduce-only, so both are fine.
        let body = Effects::of_stmts(&[reduce(
            "y",
            vec![var("i")],
            read("A", vec![var("i"), var("j")]) * read("x", vec![var("j")]),
        )]);
        assert!(loop_is_parallelizable(&Sym::new("i"), &body, &ctx));
        assert!(loop_is_parallelizable(&Sym::new("j"), &body, &ctx));
    }

    #[test]
    fn gemv_accumulator_reduction_is_parallelizable() {
        // Regression (satellite: reduce into a loop-invariant scalar): the
        // gemv inner loop `y[i] += A[i, j] * x[j]` over `j`, plus a read of
        // the accumulator *after* the loop must still be rejected when it
        // appears inside the body.
        let ctx = Context::new();
        let accum = Effects::of_stmts(&[reduce(
            "y",
            vec![var("i")],
            read("A", vec![var("i"), var("j")]) * read("x", vec![var("j")]),
        )]);
        assert!(loop_is_parallelizable(&Sym::new("j"), &accum, &ctx));
        // But mixing the reduce with a same-buffer read breaks the
        // exemption: partial sums become observable.
        let mixed = Effects::of_stmts(&[
            reduce("y", vec![var("i")], read("x", vec![var("j")])),
            assign("z", vec![var("j")], read("y", vec![var("i")])),
        ]);
        assert!(!loop_is_parallelizable(&Sym::new("j"), &mixed, &ctx));
    }

    #[test]
    fn disjoint_strided_writes_are_parallelizable() {
        // a[2*i] = ..; a[2*i+1] = ..  : distinct iterations write distinct
        // residue classes — the index-level test proves the loop parallel
        // where the old name-level test rejected it.
        let ctx = Context::new();
        let body = Effects::of_stmts(&[
            assign("a", vec![ib(2) * var("i")], fb(0.0)),
            assign("a", vec![ib(2) * var("i") + ib(1)], fb(1.0)),
        ]);
        assert!(loop_is_parallelizable(&Sym::new("i"), &body, &ctx));
        // a[2*i] and a[2*i + 2] collide across iterations (i' = i + 1).
        let body = Effects::of_stmts(&[
            assign("a", vec![ib(2) * var("i")], fb(0.0)),
            assign("a", vec![ib(2) * var("i") + ib(2)], fb(1.0)),
        ]);
        assert!(!loop_is_parallelizable(&Sym::new("i"), &body, &ctx));
        // Residuals varying with an inner iterator are not invariant:
        // y[i + j] over i may collide.
        let body = Effects::of_stmts(&[Stmt::For {
            iter: Sym::new("j"),
            lo: ib(0),
            hi: ib(4),
            body: exo_ir::Block::from_stmts(vec![assign("y", vec![var("i") + var("j")], fb(0.0))]),
            parallel: false,
        }]);
        assert!(!loop_is_parallelizable(&Sym::new("i"), &body, &ctx));
    }

    #[test]
    fn strided_offsets_commute_via_residue_classes() {
        // x[2*i] vs x[2*i + 1]: disjoint for all i, i' by residue class.
        let ctx = Context::new();
        let a = Effects::of_stmt(&assign("x", vec![ib(2) * var("i")], fb(1.0)));
        let b = Effects::of_stmt(&assign("x", vec![ib(2) * var("i") + ib(1)], fb(2.0)));
        assert!(stmts_commute(&a, &b, &ctx));
        // x[i] vs x[i + 8] with i < 8 on both: ranges [0,7] and [8,15].
        let mut rctx = Context::new();
        rctx.push_iter(Sym::new("i"), ib(0), ib(8));
        let a = Effects::of_stmt(&assign("x", vec![var("i")], fb(1.0)));
        let b = Effects::of_stmt(&assign("x", vec![var("i") + ib(8)], fb(2.0)));
        assert!(stmts_commute(&a, &b, &rctx));
        // x[i] vs x[j]: nothing relates the symbols — stay conservative.
        let a = Effects::of_stmt(&assign("x", vec![var("i")], fb(1.0)));
        let b = Effects::of_stmt(&assign("x", vec![var("j")], fb(2.0)));
        assert!(!stmts_commute(&a, &b, &ctx));
    }

    #[test]
    fn private_allocations_do_not_block_parallelism() {
        let ctx = Context::new();
        let stmts = vec![
            Stmt::Alloc {
                name: Sym::new("t"),
                ty: exo_ir::DataType::F32,
                dims: vec![],
                mem: exo_ir::Mem::Dram,
            },
            assign("t", vec![], read("x", vec![var("i")])),
            assign("y", vec![var("i")], var("t")),
        ];
        let eff = Effects::of_stmts(&stmts);
        assert!(loop_is_parallelizable(&Sym::new("i"), &eff, &ctx));
    }

    #[test]
    fn idempotence() {
        // x[i] = a  : idempotent
        assert!(is_idempotent(&[assign("x", vec![var("i")], var("a"))]));
        // x[i] += a : not idempotent
        assert!(!is_idempotent(&[reduce("x", vec![var("i")], var("a"))]));
        // x[i] = x[i] * 2 : not idempotent (reads what it writes)
        assert!(!is_idempotent(&[assign(
            "x",
            vec![var("i")],
            read("x", vec![var("i")]) * fb(2.0)
        )]));
        // blur_x[y, x] = inp[...] : idempotent
        assert!(is_idempotent(&[assign(
            "blur_x",
            vec![var("y"), var("x")],
            read("inp", vec![var("y"), var("x")])
        )]));
    }

    #[test]
    fn dependence_on_symbols() {
        let s = assign("y", vec![var("i")], read("x", vec![var("j")]));
        assert!(body_depends_on(std::slice::from_ref(&s), &Sym::new("j")));
        assert!(body_depends_on(std::slice::from_ref(&s), &Sym::new("i")));
        assert!(!body_depends_on(&[s], &Sym::new("k")));
        // Shadowing: a loop over `i` hides outer `i`.
        let shadowed = Stmt::For {
            iter: Sym::new("i"),
            lo: ib(0),
            hi: ib(4),
            body: Block::from_stmts(vec![assign("y", vec![var("i")], fb(0.0))]),
            parallel: false,
        };
        assert!(!body_depends_on(&[shadowed], &Sym::new("i")));
    }

    #[test]
    fn writes_depend_on_iter_check() {
        let eff = Effects::of_stmts(&[assign("y", vec![var("i")], fb(0.0))]);
        assert!(writes_depend_on_iter(&eff, &Sym::new("i")));
        let eff = Effects::of_stmts(&[assign("y", vec![var("j")], fb(0.0))]);
        assert!(!writes_depend_on_iter(&eff, &Sym::new("i")));
    }
}
