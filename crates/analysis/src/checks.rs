//! Commutativity, dependence, idempotence and invariance checks.
//!
//! These are the checks the scheduling primitives of `exo-core` use to
//! guarantee functional equivalence (the "Safety conditions" column of the
//! paper's Appendix A). All checks are conservative: a `false` answer means
//! "could not prove safe", not "definitely unsafe".

use crate::context::Context;
use crate::effects::{Access, Effects};
use crate::linear::LinExpr;
use exo_ir::{for_each_expr, Expr, Stmt, Sym};
use std::collections::BTreeSet;

/// Whether two accesses may refer to the same buffer element.
///
/// Returns `false` (provably disjoint) only when some dimension's index
/// expressions differ by a nonzero constant.
fn may_overlap(a: &Access, b: &Access) -> bool {
    if a.buf != b.buf {
        return false;
    }
    if a.whole_buffer || b.whole_buffer {
        return true;
    }
    if a.idx.len() != b.idx.len() {
        return true;
    }
    for (ia, ib) in a.idx.iter().zip(b.idx.iter()) {
        let diff = LinExpr::from_expr(ia).sub(&LinExpr::from_expr(ib));
        if let Some(c) = diff.as_constant() {
            if c != 0 {
                return false;
            }
        }
    }
    true
}

/// Whether two statements (or statement blocks, via their combined
/// effects) commute: executing them in either order yields the same state.
pub fn stmts_commute(a: &Effects, b: &Effects, _ctx: &Context) -> bool {
    // Config state: any write/read or write/write collision on the same
    // field forbids reordering.
    for (c, f) in &a.config_writes {
        if b.config_writes.iter().any(|(c2, f2)| c2 == c && f2 == f)
            || b.config_reads.iter().any(|(c2, f2)| c2 == c && f2 == f)
        {
            return false;
        }
    }
    for (c, f) in &b.config_writes {
        if a.config_reads.iter().any(|(c2, f2)| c2 == c && f2 == f) {
            return false;
        }
    }
    // Write/write conflicts: assignments never commute with overlapping
    // writes; reductions commute with each other (addition commutes).
    for wa in &a.writes {
        for wb in b.writes.iter().chain(b.reduces.iter()) {
            if may_overlap(wa, wb) {
                return false;
            }
        }
    }
    for wa in &a.reduces {
        for wb in &b.writes {
            if may_overlap(wa, wb) {
                return false;
            }
        }
    }
    // Read/write conflicts in both directions (a reduce both reads and
    // writes its destination, but reduce-vs-reduce on the same location is
    // fine).
    for ra in &a.reads {
        for wb in b.writes.iter().chain(b.reduces.iter()) {
            if may_overlap(ra, wb) {
                return false;
            }
        }
    }
    for rb in &b.reads {
        for wa in a.writes.iter().chain(a.reduces.iter()) {
            if may_overlap(rb, wa) {
                return false;
            }
        }
    }
    true
}

/// Whether the iterations of `for iter in ...: body` may execute in any
/// order (no loop-carried read-after-write or write-after-write
/// dependencies). Used by `parallelize_loop`, `reorder_loops` and `fuse`.
pub fn loop_is_parallelizable(iter: &Sym, body_effects: &Effects, _ctx: &Context) -> bool {
    if body_effects.has_calls {
        return false;
    }
    if !body_effects.config_writes.is_empty() {
        return false;
    }
    for buf in body_effects.buffers_written() {
        // Skip buffers allocated inside the body: they are private per
        // iteration.
        if body_effects.allocs.contains(&buf) {
            continue;
        }
        let writes = body_effects.writes_to(&buf);
        let all = body_effects.accesses_to(&buf);
        // Every write must be "indexed by" the iterator: some dimension has
        // a nonzero coefficient on `iter`, and every access to the buffer
        // uses the *same* expression in that dimension, so distinct
        // iterations touch distinct elements.
        for w in &writes {
            if w.whole_buffer {
                return false;
            }
            let dep_dim = w
                .idx
                .iter()
                .position(|e| LinExpr::from_expr(e).coeff_of(iter) != 0);
            let Some(d) = dep_dim else { return false };
            let w_lin = LinExpr::from_expr(&w.idx[d]);
            for other in &all {
                if other.whole_buffer || other.idx.len() != w.idx.len() {
                    return false;
                }
                let o_lin = LinExpr::from_expr(&other.idx[d]);
                if !o_lin.sub(&w_lin).is_zero() {
                    return false;
                }
            }
        }
    }
    true
}

/// Whether executing the statements twice in a row is equivalent to
/// executing them once. Used by `remove_loop`, `add_loop` and
/// `divide_with_recompute`.
pub fn is_idempotent<'a>(stmts: impl IntoIterator<Item = &'a Stmt> + Clone) -> bool {
    let eff = Effects::of_stmts(stmts.clone());
    if eff.has_calls || !eff.config_writes.is_empty() || !eff.reduces.is_empty() {
        return false;
    }
    // Pure assignments are idempotent as long as no assignment reads a
    // buffer that the block also writes (otherwise the second execution
    // would see different inputs).
    let written = eff.buffers_written();
    for r in &eff.reads {
        if written.contains(&r.buf) {
            return false;
        }
    }
    true
}

/// Whether any expression in the statements mentions `sym`.
pub fn body_depends_on<'a>(stmts: impl IntoIterator<Item = &'a Stmt>, sym: &Sym) -> bool {
    let mut found = false;
    for s in stmts {
        if let Stmt::For { iter, .. } = s {
            if iter == sym {
                // Shadowed; occurrences below refer to the inner binding.
                continue;
            }
        }
        for_each_expr(s, &mut |e: &Expr| {
            if e.mentions(sym) {
                found = true;
            }
        });
        if found {
            return true;
        }
    }
    false
}

/// Whether every *write* in the body indexes the written buffer with an
/// expression that depends on `iter`. (When true, distinct iterations
/// write distinct locations.)
pub fn writes_depend_on_iter(body_effects: &Effects, iter: &Sym) -> bool {
    body_effects
        .writes
        .iter()
        .chain(body_effects.reduces.iter())
        .all(|w| {
            !w.whole_buffer
                && w.idx
                    .iter()
                    .any(|e| LinExpr::from_expr(e).coeff_of(iter) != 0)
        })
}

/// Names of buffers allocated directly or transitively in the statements.
pub fn alloc_names<'a>(stmts: impl IntoIterator<Item = &'a Stmt>) -> BTreeSet<Sym> {
    Effects::of_stmts(stmts).allocs.into_iter().collect()
}

/// Buffers written (assigned or reduced) in the statements.
pub fn buffers_written<'a>(stmts: impl IntoIterator<Item = &'a Stmt>) -> BTreeSet<Sym> {
    Effects::of_stmts(stmts).buffers_written()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_ir::{fb, ib, read, var, Block};

    fn assign(buf: &str, idx: Vec<Expr>, rhs: Expr) -> Stmt {
        Stmt::Assign {
            buf: Sym::new(buf),
            idx,
            rhs,
        }
    }

    fn reduce(buf: &str, idx: Vec<Expr>, rhs: Expr) -> Stmt {
        Stmt::Reduce {
            buf: Sym::new(buf),
            idx,
            rhs,
        }
    }

    #[test]
    fn disjoint_constant_offsets_commute() {
        let ctx = Context::new();
        let a = Effects::of_stmt(&assign("x", vec![ib(0)], fb(1.0)));
        let b = Effects::of_stmt(&assign("x", vec![ib(1)], fb(2.0)));
        assert!(stmts_commute(&a, &b, &ctx));
        let c = Effects::of_stmt(&assign("x", vec![ib(0)], fb(3.0)));
        assert!(!stmts_commute(&a, &c, &ctx));
    }

    #[test]
    fn reductions_commute_with_each_other_but_not_with_assignments() {
        let ctx = Context::new();
        let r1 = Effects::of_stmt(&reduce("acc", vec![], var("a")));
        let r2 = Effects::of_stmt(&reduce("acc", vec![], var("b")));
        assert!(stmts_commute(&r1, &r2, &ctx));
        let w = Effects::of_stmt(&assign("acc", vec![], fb(0.0)));
        assert!(!stmts_commute(&r1, &w, &ctx));
    }

    #[test]
    fn read_write_conflicts_block_commuting() {
        let ctx = Context::new();
        let producer = Effects::of_stmt(&assign("t", vec![var("i")], read("x", vec![var("i")])));
        let consumer = Effects::of_stmt(&assign("y", vec![var("i")], read("t", vec![var("i")])));
        assert!(!stmts_commute(&producer, &consumer, &ctx));
        // Independent buffers commute.
        let other = Effects::of_stmt(&assign("z", vec![var("i")], read("w", vec![var("i")])));
        assert!(stmts_commute(&producer, &other, &ctx));
    }

    #[test]
    fn config_state_blocks_commuting() {
        let ctx = Context::new();
        let wcfg = Effects::of_stmt(&Stmt::WriteConfig {
            config: Sym::new("cfg"),
            field: "stride".into(),
            value: ib(1),
        });
        let rcfg = Effects::of_stmt(&assign(
            "x",
            vec![],
            Expr::ReadConfig {
                config: Sym::new("cfg"),
                field: "stride".into(),
            },
        ));
        assert!(!stmts_commute(&wcfg, &rcfg, &ctx));
        assert!(!stmts_commute(&wcfg, &wcfg, &ctx));
    }

    #[test]
    fn parallelizable_loops() {
        let ctx = Context::new();
        // y[i] = x[i] : parallelizable
        let body = Effects::of_stmts(&[assign("y", vec![var("i")], read("x", vec![var("i")]))]);
        assert!(loop_is_parallelizable(&Sym::new("i"), &body, &ctx));
        // acc += x[i] : not parallelizable (loop-carried reduce)
        let body = Effects::of_stmts(&[reduce("acc", vec![], read("x", vec![var("i")]))]);
        assert!(!loop_is_parallelizable(&Sym::new("i"), &body, &ctx));
        // y[i] = y[i+1] : not parallelizable (offset read of written buffer)
        let body = Effects::of_stmts(&[assign(
            "y",
            vec![var("i")],
            read("y", vec![var("i") + ib(1)]),
        )]);
        assert!(!loop_is_parallelizable(&Sym::new("i"), &body, &ctx));
        // y[i] += A[i, j] * x[j], parallel over i: ok (reduce indexed by i)
        let body = Effects::of_stmts(&[reduce(
            "y",
            vec![var("i")],
            read("A", vec![var("i"), var("j")]) * read("x", vec![var("j")]),
        )]);
        assert!(loop_is_parallelizable(&Sym::new("i"), &body, &ctx));
        assert!(!loop_is_parallelizable(&Sym::new("j"), &body, &ctx));
    }

    #[test]
    fn private_allocations_do_not_block_parallelism() {
        let ctx = Context::new();
        let stmts = vec![
            Stmt::Alloc {
                name: Sym::new("t"),
                ty: exo_ir::DataType::F32,
                dims: vec![],
                mem: exo_ir::Mem::Dram,
            },
            assign("t", vec![], read("x", vec![var("i")])),
            assign("y", vec![var("i")], var("t")),
        ];
        let eff = Effects::of_stmts(&stmts);
        assert!(loop_is_parallelizable(&Sym::new("i"), &eff, &ctx));
    }

    #[test]
    fn idempotence() {
        // x[i] = a  : idempotent
        assert!(is_idempotent(&[assign("x", vec![var("i")], var("a"))]));
        // x[i] += a : not idempotent
        assert!(!is_idempotent(&[reduce("x", vec![var("i")], var("a"))]));
        // x[i] = x[i] * 2 : not idempotent (reads what it writes)
        assert!(!is_idempotent(&[assign(
            "x",
            vec![var("i")],
            read("x", vec![var("i")]) * fb(2.0)
        )]));
        // blur_x[y, x] = inp[...] : idempotent
        assert!(is_idempotent(&[assign(
            "blur_x",
            vec![var("y"), var("x")],
            read("inp", vec![var("y"), var("x")])
        )]));
    }

    #[test]
    fn dependence_on_symbols() {
        let s = assign("y", vec![var("i")], read("x", vec![var("j")]));
        assert!(body_depends_on(std::slice::from_ref(&s), &Sym::new("j")));
        assert!(body_depends_on(std::slice::from_ref(&s), &Sym::new("i")));
        assert!(!body_depends_on(&[s], &Sym::new("k")));
        // Shadowing: a loop over `i` hides outer `i`.
        let shadowed = Stmt::For {
            iter: Sym::new("i"),
            lo: ib(0),
            hi: ib(4),
            body: Block::from_stmts(vec![assign("y", vec![var("i")], fb(0.0))]),
            parallel: false,
        };
        assert!(!body_depends_on(&[shadowed], &Sym::new("i")));
    }

    #[test]
    fn writes_depend_on_iter_check() {
        let eff = Effects::of_stmts(&[assign("y", vec![var("i")], fb(0.0))]);
        assert!(writes_depend_on_iter(&eff, &Sym::new("i")));
        let eff = Effects::of_stmts(&[assign("y", vec![var("j")], fb(0.0))]);
        assert!(!writes_depend_on_iter(&eff, &Sym::new("i")));
    }
}
