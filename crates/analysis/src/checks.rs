//! Commutativity, dependence, idempotence and invariance checks.
//!
//! These are the checks the scheduling primitives of `exo-core` use to
//! guarantee functional equivalence (the "Safety conditions" column of the
//! paper's Appendix A). All checks are conservative: a `false` answer means
//! "could not prove safe", not "definitely unsafe".

use crate::context::Context;
use crate::effects::{Access, Effects};
use crate::linear::LinExpr;
use exo_ir::{for_each_expr, Expr, Stmt, Sym};
use std::collections::BTreeSet;

/// Whether a per-dimension index difference is provably nonzero under
/// `ctx`: a nonzero constant, a residue class that excludes zero (all
/// coefficients share a divisor `g` the constant is not a multiple of), or
/// a value range that excludes zero.
fn diff_provably_nonzero(diff: &LinExpr, ctx: &Context) -> bool {
    if let Some(c) = diff.as_constant() {
        return c != 0;
    }
    // Residue class: diff = g·(...) + c with c % g != 0 is never zero.
    // This proves `a[2*i]` and `a[2*i + 1]` disjoint for *all* i, i'.
    let g = diff.terms.values().fold(0i64, |acc, c| gcd(acc, c.abs()));
    if g > 1 && diff.constant % g != 0 {
        return true;
    }
    // Interval: every atom has known constant bounds and 0 is outside.
    let bound = |lower: bool| -> Option<i64> {
        let mut acc = diff.constant;
        for (atom, coeff) in &diff.terms {
            let crate::linear::Atom::Var(s) = atom else {
                return None;
            };
            let b = if (*coeff > 0) == lower {
                ctx.lower_bound(s)?
            } else {
                ctx.upper_bound(s)?
            };
            acc += coeff * b;
        }
        Some(acc)
    };
    matches!(bound(true), Some(lo) if lo > 0) || matches!(bound(false), Some(hi) if hi < 0)
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Whether two accesses may refer to the same buffer element.
///
/// Returns `false` (provably disjoint) only when some dimension's index
/// expressions provably differ: by a nonzero constant, by a nonzero
/// residue class, or by a `ctx`-derived value range excluding zero.
fn may_overlap(a: &Access, b: &Access, ctx: &Context) -> bool {
    if a.buf != b.buf {
        return false;
    }
    if a.whole_buffer || b.whole_buffer {
        return true;
    }
    if a.idx.len() != b.idx.len() {
        return true;
    }
    for (ia, ib) in a.idx.iter().zip(b.idx.iter()) {
        let diff = LinExpr::from_expr(ia).sub(&LinExpr::from_expr(ib));
        if diff_provably_nonzero(&diff, ctx) {
            return false;
        }
    }
    true
}

/// Whether two statements (or statement blocks, via their combined
/// effects) commute: executing them in either order yields the same state.
pub fn stmts_commute(a: &Effects, b: &Effects, ctx: &Context) -> bool {
    // Config state: any write/read or write/write collision on the same
    // field forbids reordering.
    for (c, f) in &a.config_writes {
        if b.config_writes.iter().any(|(c2, f2)| c2 == c && f2 == f)
            || b.config_reads.iter().any(|(c2, f2)| c2 == c && f2 == f)
        {
            return false;
        }
    }
    for (c, f) in &b.config_writes {
        if a.config_reads.iter().any(|(c2, f2)| c2 == c && f2 == f) {
            return false;
        }
    }
    // Write/write conflicts: assignments never commute with overlapping
    // writes; reductions commute with each other (addition commutes).
    for wa in &a.writes {
        for wb in b.writes.iter().chain(b.reduces.iter()) {
            if may_overlap(wa, wb, ctx) {
                return false;
            }
        }
    }
    for wa in &a.reduces {
        for wb in &b.writes {
            if may_overlap(wa, wb, ctx) {
                return false;
            }
        }
    }
    // Read/write conflicts in both directions (a reduce both reads and
    // writes its destination, but reduce-vs-reduce on the same location is
    // fine).
    for ra in &a.reads {
        for wb in b.writes.iter().chain(b.reduces.iter()) {
            if may_overlap(ra, wb, ctx) {
                return false;
            }
        }
    }
    for rb in &b.reads {
        for wa in a.writes.iter().chain(a.reduces.iter()) {
            if may_overlap(rb, wa, ctx) {
                return false;
            }
        }
    }
    true
}

/// Whether two accesses are provably disjoint across *distinct* iterations
/// of `iter`: some dimension's indices decompose as `s·iter + r` with the
/// same stride `s != 0` on both sides and a loop-invariant residual
/// difference `δ` that is either zero or not a multiple of `s` — then
/// `s·(i - i') = δ` has no solution with `i != i'`.
fn iteration_disjoint(iter: &Sym, a: &Access, b: &Access, ctx: &Context) -> bool {
    if a.whole_buffer || b.whole_buffer || a.idx.len() != b.idx.len() {
        return false;
    }
    let _ = ctx;
    for (ia, ib) in a.idx.iter().zip(b.idx.iter()) {
        let la = LinExpr::from_expr(ia);
        let lb = LinExpr::from_expr(ib);
        let s = la.coeff_of(iter);
        if s == 0 || lb.coeff_of(iter) != s {
            continue;
        }
        // Neither side may vary with an iterator bound *inside* the loop
        // body: those take arbitrary values on each side of the comparison,
        // so they must be checked before subtraction (same-named body
        // iterators would cancel, e.g. `y[i + j]` vs itself over `i`).
        let body_invariant = |l: &LinExpr| {
            a.iters
                .iter()
                .chain(b.iters.iter())
                .filter(|s2| *s2 != iter)
                .all(|s2| !l.mentions(s2))
        };
        if !body_invariant(&la) || !body_invariant(&lb) {
            continue;
        }
        let mut delta = la.sub(&lb);
        delta.terms.remove(&crate::linear::Atom::Var(iter.clone()));
        // `iter` must not survive inside an opaque term of the residual.
        if delta.mentions(iter) {
            continue;
        }
        if delta.is_zero() {
            return true;
        }
        if let Some(c) = delta.as_constant() {
            if c % s != 0 {
                return true;
            }
        }
    }
    false
}

/// Whether the iterations of `for iter in ...: body` may execute in any
/// order (no loop-carried read-after-write or write-after-write
/// dependencies). Used by `parallelize_loop` and the verifier's
/// parallel-loop race check.
///
/// The test is index-level: two accesses to the same buffer are fine when
/// [`iteration_disjoint`] proves distinct iterations touch distinct
/// elements (e.g. `C[i, j]` over `i`, or the strided pair `a[2*i]` /
/// `a[2*i + 1]`). Buffers whose every access in the body is a *reduce* are
/// always fine: reductions commute, so the loop is parallelizable as a
/// reduction even when the destination index is loop-invariant (the gemv
/// accumulator shape `y[i] += A[i, j] * x[j]` over `j`).
pub fn loop_is_parallelizable(iter: &Sym, body_effects: &Effects, ctx: &Context) -> bool {
    if body_effects.has_calls {
        return false;
    }
    if !body_effects.config_writes.is_empty() {
        return false;
    }
    for buf in body_effects.buffers_written() {
        // Skip buffers allocated inside the body: they are private per
        // iteration.
        if body_effects.allocs.contains(&buf) {
            continue;
        }
        let is = |list: &[Access]| -> Vec<Access> {
            list.iter().filter(|a| a.buf == buf).cloned().collect()
        };
        let reads = is(&body_effects.reads);
        let writes = is(&body_effects.writes);
        let reduces = is(&body_effects.reduces);
        // Reduce-only buffers: all iterations commute (accumulation order
        // is irrelevant), regardless of indexing.
        if writes.is_empty() && reads.is_empty() {
            continue;
        }
        // Every (write, access) pair must be provably disjoint across
        // distinct iterations; reduce-vs-reduce pairs commute and are
        // exempt.
        let writers: Vec<(&Access, bool)> = writes
            .iter()
            .map(|a| (a, false))
            .chain(reduces.iter().map(|a| (a, true)))
            .collect();
        let others: Vec<(&Access, bool)> = reads
            .iter()
            .map(|a| (a, false))
            .chain(writers.iter().copied())
            .collect();
        for (w, w_red) in &writers {
            for (o, o_red) in &others {
                if *w_red && *o_red {
                    continue;
                }
                if !iteration_disjoint(iter, w, o, ctx) {
                    return false;
                }
            }
        }
    }
    true
}

/// A per-iteration rectangular footprint of one buffer access inside a
/// candidate threaded-loop body: per dimension a half-open interval
/// `[lo, hi)` of linearized index bounds (a point access `e` is
/// `[e, e + 1)`).
struct Region {
    buf: Sym,
    dims: Vec<(LinExpr, LinExpr)>,
    /// Iterators bound inside the analyzed body, in scope at this access.
    iters: Vec<Sym>,
    written: bool,
}

fn point_dim(e: &Expr) -> (LinExpr, LinExpr) {
    let lo = LinExpr::from_expr(e);
    let hi = lo.add(&LinExpr::constant(1));
    (lo, hi)
}

fn waccess_dim(w: &exo_ir::WAccess) -> (LinExpr, LinExpr) {
    match w {
        exo_ir::WAccess::Point(e) => point_dim(e),
        exo_ir::WAccess::Interval(lo, hi) => (LinExpr::from_expr(lo), LinExpr::from_expr(hi)),
    }
}

/// A per-`(callee, argument-index)` writability oracle for the region
/// analysis: `Some(false)` means the callee provably never writes that
/// argument, `Some(true)` that it does (or may), and `None` that the
/// callee is unknown — treated as a write. Callers holding the callee
/// bodies (a `ProcRegistry`, a `MachineModel`'s instruction list) build
/// one from [`written_params`]; everyone else gets the conservative
/// `&|_, _| None`.
pub type CalleeWrites<'a> = &'a dyn Fn(&str, usize) -> Option<bool>;

/// Which positional arguments `proc`'s body may write, derived from the
/// body itself: an argument is written when it is the target of an
/// assignment or reduction, aliased by a window statement, or passed on
/// to a nested call in any buffer position (no recursion — the nested
/// callee's body is not at hand here). Scalar and size arguments are
/// never written (the IR has no address-of).
pub fn written_params(proc: &exo_ir::Proc) -> Vec<bool> {
    fn mark<'a>(stmts: impl IntoIterator<Item = &'a Stmt>, written: &mut BTreeSet<Sym>) {
        for s in stmts {
            match s {
                Stmt::Assign { buf, .. } | Stmt::Reduce { buf, .. } => {
                    written.insert(buf.clone());
                }
                // The alias may be written later; charge the source.
                Stmt::WindowStmt {
                    rhs: Expr::Window { buf, .. },
                    ..
                } => {
                    written.insert(buf.clone());
                }
                Stmt::Call { args, .. } => {
                    for a in args {
                        match a {
                            Expr::Window { buf, .. } | Expr::Read { buf, .. } => {
                                written.insert(buf.clone());
                            }
                            Expr::Var(v) => {
                                written.insert(v.clone());
                            }
                            _ => {}
                        }
                    }
                }
                Stmt::For { body, .. } => mark(body, written),
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    mark(then_body, written);
                    mark(else_body, written);
                }
                _ => {}
            }
        }
    }
    let mut written = BTreeSet::new();
    mark(proc.body(), &mut written);
    proc.args()
        .iter()
        .map(|a| written.contains(&a.name))
        .collect()
}

/// Collects every buffer region a loop body touches. Call-argument
/// windows are written or read per the [`CalleeWrites`] oracle (written
/// when unknown) and reduces are plain writes — under OS threads `+=`
/// is a read-modify-write data race even though it commutes
/// semantically. Collection *fails* (returns `false`) on constructs the
/// region analysis cannot bound: window aliases, config writes, bare
/// non-private buffer arguments a callee may write.
struct RegionCollector<'c> {
    iters: Vec<Sym>,
    allocs: BTreeSet<Sym>,
    regions: Vec<Region>,
    callee_writes: CalleeWrites<'c>,
}

impl<'c> RegionCollector<'c> {
    fn new(callee_writes: CalleeWrites<'c>) -> Self {
        RegionCollector {
            iters: Vec::new(),
            allocs: BTreeSet::new(),
            regions: Vec::new(),
            callee_writes,
        }
    }

    fn push(&mut self, buf: &Sym, dims: Vec<(LinExpr, LinExpr)>, written: bool) {
        self.regions.push(Region {
            buf: buf.clone(),
            dims,
            iters: self.iters.clone(),
            written,
        });
    }

    fn expr(&mut self, e: &Expr) -> bool {
        match e {
            Expr::Read { buf, idx } => {
                self.push(buf, idx.iter().map(point_dim).collect(), false);
                idx.iter().all(|i| self.expr(i))
            }
            Expr::Window { buf, idx } => {
                self.push(buf, idx.iter().map(waccess_dim).collect(), false);
                idx.iter().all(|w| match w {
                    exo_ir::WAccess::Point(e) => self.expr(e),
                    exo_ir::WAccess::Interval(lo, hi) => self.expr(lo) && self.expr(hi),
                })
            }
            Expr::Bin { lhs, rhs, .. } => self.expr(lhs) && self.expr(rhs),
            Expr::Un { arg, .. } => self.expr(arg),
            Expr::Int(_)
            | Expr::Float(_)
            | Expr::Bool(_)
            | Expr::Var(_)
            | Expr::Stride { .. }
            | Expr::ReadConfig { .. } => true,
        }
    }

    fn stmts<'a>(&mut self, stmts: impl IntoIterator<Item = &'a Stmt>) -> bool {
        stmts.into_iter().all(|s| self.stmt(s))
    }

    fn stmt(&mut self, s: &Stmt) -> bool {
        match s {
            Stmt::Assign { buf, idx, rhs } | Stmt::Reduce { buf, idx, rhs } => {
                self.push(buf, idx.iter().map(point_dim).collect(), true);
                idx.iter().all(|i| self.expr(i)) && self.expr(rhs)
            }
            Stmt::Alloc { name, dims, .. } => {
                self.allocs.insert(name.clone());
                dims.iter().all(|d| self.expr(d))
            }
            Stmt::For {
                iter, lo, hi, body, ..
            } => {
                if !(self.expr(lo) && self.expr(hi)) {
                    return false;
                }
                self.iters.push(iter.clone());
                let ok = self.stmts(body);
                self.iters.pop();
                ok
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => self.expr(cond) && self.stmts(then_body) && self.stmts(else_body),
            Stmt::Call { proc, args } => args.iter().enumerate().all(|(n, a)| match a {
                Expr::Window { buf, idx } => {
                    let written = (self.callee_writes)(proc, n).unwrap_or(true);
                    self.push(buf, idx.iter().map(waccess_dim).collect(), written);
                    idx.iter().all(|w| match w {
                        exo_ir::WAccess::Point(e) => self.expr(e),
                        exo_ir::WAccess::Interval(lo, hi) => self.expr(lo) && self.expr(hi),
                    })
                }
                // A bare name passed to a callee is fine when it is a
                // body-local (hence thread-private) alloc, or when the
                // callee provably never writes it (a read of unknown
                // extent pairs against writers and blocks them, which is
                // exactly right); otherwise the callee could write
                // through it with unknown extent.
                Expr::Var(v) => {
                    if self.allocs.contains(v) {
                        true
                    } else if (self.callee_writes)(proc, n) == Some(false) {
                        self.push(v, Vec::new(), false);
                        true
                    } else {
                        false
                    }
                }
                other => self.expr(other),
            }),
            Stmt::Pass => true,
            // Ordered device state and aliases defeat the region analysis.
            Stmt::WriteConfig { .. } | Stmt::WindowStmt { .. } => false,
        }
    }
}

/// Whether two regions are provably disjoint for *distinct* values of
/// `iter`. Looks for one dimension whose bounds all decompose as
/// `s·iter + r` with a shared nonzero stride `s`, body-invariant
/// residuals, constant widths `wa`, `wb` and a constant residual offset
/// `δ`, such that at the closest approach (`|i − i'| = 1`) the intervals
/// still miss each other: `|s| + δ ≥ wb` and `δ + wa ≤ |s|`. Larger
/// `|i − i'|` only moves the regions further apart, so one such
/// dimension proves the pair disjoint.
fn region_disjoint_across(iter: &Sym, a: &Region, b: &Region) -> bool {
    if a.dims.len() != b.dims.len() {
        return false;
    }
    for ((alo, ahi), (blo, bhi)) in a.dims.iter().zip(b.dims.iter()) {
        let s = alo.coeff_of(iter);
        if s == 0 || ahi.coeff_of(iter) != s || blo.coeff_of(iter) != s || bhi.coeff_of(iter) != s {
            continue;
        }
        // Bounds must not vary with iterators bound inside the body on
        // either side: those take unrelated values in the two iterations
        // being compared (`y[x + dx]` vs itself over `x`, `dx` inner).
        let body_invariant = |l: &LinExpr| {
            a.iters
                .iter()
                .chain(b.iters.iter())
                .filter(|s2| *s2 != iter)
                .all(|s2| !l.mentions(s2))
        };
        if [alo, ahi, blo, bhi].iter().any(|l| !body_invariant(l)) {
            continue;
        }
        let (Some(wa), Some(wb)) = (ahi.sub(alo).as_constant(), bhi.sub(blo).as_constant()) else {
            continue;
        };
        if wa <= 0 || wb <= 0 {
            continue;
        }
        let mut delta = alo.sub(blo);
        delta.terms.remove(&crate::linear::Atom::Var(iter.clone()));
        if delta.mentions(iter) {
            continue;
        }
        let Some(d) = delta.as_constant() else {
            continue;
        };
        let s_abs = s.abs();
        if s_abs + d >= wb && d + wa <= s_abs {
            return true;
        }
    }
    false
}

/// Whether `for iter in ...: body` is safe to execute on OS threads
/// (`#pragma omp parallel for`): every pair of same-buffer region
/// accesses in which at least one side writes must be provably disjoint
/// across distinct iterations. Reductions count as writes (a C-level
/// `+=` race), call-argument windows count as callee writes, and
/// body-local allocs are thread-private. The check is incomparable to
/// [`loop_is_parallelizable`]: stronger on commuting reductions (which
/// it rejects), weaker on bodies made of instruction calls with
/// window arguments (which that check rejects outright).
///
/// Without callee knowledge every call-argument window counts as a
/// write; see [`loop_is_threadable_where`] to supply a
/// [`CalleeWrites`] oracle so read-only operands (the `B` panel of an
/// FMA, a broadcast source) stop defeating the proof.
pub fn loop_is_threadable<'a>(iter: &Sym, body: impl IntoIterator<Item = &'a Stmt>) -> bool {
    loop_is_threadable_where(iter, body, &|_, _| None)
}

/// [`loop_is_threadable`] with a [`CalleeWrites`] oracle resolving
/// which call arguments each callee actually writes.
pub fn loop_is_threadable_where<'a, 'c>(
    iter: &Sym,
    body: impl IntoIterator<Item = &'a Stmt>,
    callee_writes: CalleeWrites<'c>,
) -> bool {
    let mut rc = RegionCollector::new(callee_writes);
    if !rc.stmts(body) {
        return false;
    }
    for w in rc.regions.iter().filter(|r| r.written) {
        if rc.allocs.contains(&w.buf) {
            continue;
        }
        // Every same-buffer pair with this writer — including the
        // writer against its own copy from another iteration — must be
        // provably disjoint across iterations.
        for o in rc.regions.iter().filter(|r| r.buf == w.buf) {
            if !region_disjoint_across(iter, w, o) {
                return false;
            }
        }
    }
    true
}

/// The source-level iterator names of the parallel loops in `proc` that
/// [`loop_is_threadable`] certifies for OS-thread execution. When two
/// parallel loops share an iterator name and disagree, the name is
/// conservatively excluded (the C emitter keys pragma placement by
/// source name).
pub fn threadable_parallel_loops(proc: &exo_ir::Proc) -> BTreeSet<String> {
    threadable_parallel_loops_where(proc, &|_, _| None)
}

/// [`threadable_parallel_loops`] with a [`CalleeWrites`] oracle.
pub fn threadable_parallel_loops_where(
    proc: &exo_ir::Proc,
    callee_writes: CalleeWrites<'_>,
) -> BTreeSet<String> {
    fn walk<'a>(
        stmts: impl IntoIterator<Item = &'a Stmt>,
        ok: &mut BTreeSet<String>,
        bad: &mut BTreeSet<String>,
        cw: CalleeWrites<'_>,
    ) {
        for s in stmts {
            match s {
                Stmt::For {
                    iter,
                    body,
                    parallel,
                    ..
                } => {
                    if *parallel {
                        if loop_is_threadable_where(iter, body, cw) {
                            ok.insert(iter.name().to_string());
                        } else {
                            bad.insert(iter.name().to_string());
                        }
                    }
                    walk(body, ok, bad, cw);
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    walk(then_body, ok, bad, cw);
                    walk(else_body, ok, bad, cw);
                }
                _ => {}
            }
        }
    }
    let mut ok = BTreeSet::new();
    let mut bad = BTreeSet::new();
    walk(proc.body(), &mut ok, &mut bad, callee_writes);
    ok.retain(|name| !bad.contains(name));
    ok
}

/// Whether executing the statements twice in a row is equivalent to
/// executing them once. Used by `remove_loop`, `add_loop` and
/// `divide_with_recompute`.
pub fn is_idempotent<'a>(stmts: impl IntoIterator<Item = &'a Stmt> + Clone) -> bool {
    let eff = Effects::of_stmts(stmts.clone());
    if eff.has_calls || !eff.config_writes.is_empty() || !eff.reduces.is_empty() {
        return false;
    }
    // Pure assignments are idempotent as long as no assignment reads a
    // buffer that the block also writes (otherwise the second execution
    // would see different inputs).
    let written = eff.buffers_written();
    for r in &eff.reads {
        if written.contains(&r.buf) {
            return false;
        }
    }
    true
}

/// Whether any expression in the statements mentions `sym`.
pub fn body_depends_on<'a>(stmts: impl IntoIterator<Item = &'a Stmt>, sym: &Sym) -> bool {
    let mut found = false;
    for s in stmts {
        if let Stmt::For { iter, .. } = s {
            if iter == sym {
                // Shadowed; occurrences below refer to the inner binding.
                continue;
            }
        }
        for_each_expr(s, &mut |e: &Expr| {
            if e.mentions(sym) {
                found = true;
            }
        });
        if found {
            return true;
        }
    }
    false
}

/// Whether every *write* in the body indexes the written buffer with an
/// expression that depends on `iter`. (When true, distinct iterations
/// write distinct locations.)
pub fn writes_depend_on_iter(body_effects: &Effects, iter: &Sym) -> bool {
    body_effects
        .writes
        .iter()
        .chain(body_effects.reduces.iter())
        .all(|w| {
            !w.whole_buffer
                && w.idx
                    .iter()
                    .any(|e| LinExpr::from_expr(e).coeff_of(iter) != 0)
        })
}

/// Names of buffers allocated directly or transitively in the statements.
pub fn alloc_names<'a>(stmts: impl IntoIterator<Item = &'a Stmt>) -> BTreeSet<Sym> {
    Effects::of_stmts(stmts).allocs.into_iter().collect()
}

/// Buffers written (assigned or reduced) in the statements.
pub fn buffers_written<'a>(stmts: impl IntoIterator<Item = &'a Stmt>) -> BTreeSet<Sym> {
    Effects::of_stmts(stmts).buffers_written()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_ir::{fb, ib, read, var, Block};

    fn assign(buf: &str, idx: Vec<Expr>, rhs: Expr) -> Stmt {
        Stmt::Assign {
            buf: Sym::new(buf),
            idx,
            rhs,
        }
    }

    fn reduce(buf: &str, idx: Vec<Expr>, rhs: Expr) -> Stmt {
        Stmt::Reduce {
            buf: Sym::new(buf),
            idx,
            rhs,
        }
    }

    #[test]
    fn disjoint_constant_offsets_commute() {
        let ctx = Context::new();
        let a = Effects::of_stmt(&assign("x", vec![ib(0)], fb(1.0)));
        let b = Effects::of_stmt(&assign("x", vec![ib(1)], fb(2.0)));
        assert!(stmts_commute(&a, &b, &ctx));
        let c = Effects::of_stmt(&assign("x", vec![ib(0)], fb(3.0)));
        assert!(!stmts_commute(&a, &c, &ctx));
    }

    #[test]
    fn reductions_commute_with_each_other_but_not_with_assignments() {
        let ctx = Context::new();
        let r1 = Effects::of_stmt(&reduce("acc", vec![], var("a")));
        let r2 = Effects::of_stmt(&reduce("acc", vec![], var("b")));
        assert!(stmts_commute(&r1, &r2, &ctx));
        let w = Effects::of_stmt(&assign("acc", vec![], fb(0.0)));
        assert!(!stmts_commute(&r1, &w, &ctx));
    }

    #[test]
    fn read_write_conflicts_block_commuting() {
        let ctx = Context::new();
        let producer = Effects::of_stmt(&assign("t", vec![var("i")], read("x", vec![var("i")])));
        let consumer = Effects::of_stmt(&assign("y", vec![var("i")], read("t", vec![var("i")])));
        assert!(!stmts_commute(&producer, &consumer, &ctx));
        // Independent buffers commute.
        let other = Effects::of_stmt(&assign("z", vec![var("i")], read("w", vec![var("i")])));
        assert!(stmts_commute(&producer, &other, &ctx));
    }

    #[test]
    fn config_state_blocks_commuting() {
        let ctx = Context::new();
        let wcfg = Effects::of_stmt(&Stmt::WriteConfig {
            config: Sym::new("cfg"),
            field: "stride".into(),
            value: ib(1),
        });
        let rcfg = Effects::of_stmt(&assign(
            "x",
            vec![],
            Expr::ReadConfig {
                config: Sym::new("cfg"),
                field: "stride".into(),
            },
        ));
        assert!(!stmts_commute(&wcfg, &rcfg, &ctx));
        assert!(!stmts_commute(&wcfg, &wcfg, &ctx));
    }

    #[test]
    fn parallelizable_loops() {
        let ctx = Context::new();
        // y[i] = x[i] : parallelizable
        let body = Effects::of_stmts(&[assign("y", vec![var("i")], read("x", vec![var("i")]))]);
        assert!(loop_is_parallelizable(&Sym::new("i"), &body, &ctx));
        // acc += x[i] : parallelizable *as a reduction* — every access to
        // `acc` is a reduce, and reductions commute.
        let body = Effects::of_stmts(&[reduce("acc", vec![], read("x", vec![var("i")]))]);
        assert!(loop_is_parallelizable(&Sym::new("i"), &body, &ctx));
        // acc = x[i] : NOT parallelizable (last-writer-wins assignment to a
        // loop-invariant location).
        let body = Effects::of_stmts(&[assign("acc", vec![], read("x", vec![var("i")]))]);
        assert!(!loop_is_parallelizable(&Sym::new("i"), &body, &ctx));
        // y[i] = y[i+1] : not parallelizable (offset read of written buffer)
        let body = Effects::of_stmts(&[assign(
            "y",
            vec![var("i")],
            read("y", vec![var("i") + ib(1)]),
        )]);
        assert!(!loop_is_parallelizable(&Sym::new("i"), &body, &ctx));
        // y[i] += A[i, j] * x[j]: over i the reduce is indexed by i; over j
        // it is the gemv accumulator shape — reduce-only, so both are fine.
        let body = Effects::of_stmts(&[reduce(
            "y",
            vec![var("i")],
            read("A", vec![var("i"), var("j")]) * read("x", vec![var("j")]),
        )]);
        assert!(loop_is_parallelizable(&Sym::new("i"), &body, &ctx));
        assert!(loop_is_parallelizable(&Sym::new("j"), &body, &ctx));
    }

    #[test]
    fn gemv_accumulator_reduction_is_parallelizable() {
        // Regression (satellite: reduce into a loop-invariant scalar): the
        // gemv inner loop `y[i] += A[i, j] * x[j]` over `j`, plus a read of
        // the accumulator *after* the loop must still be rejected when it
        // appears inside the body.
        let ctx = Context::new();
        let accum = Effects::of_stmts(&[reduce(
            "y",
            vec![var("i")],
            read("A", vec![var("i"), var("j")]) * read("x", vec![var("j")]),
        )]);
        assert!(loop_is_parallelizable(&Sym::new("j"), &accum, &ctx));
        // But mixing the reduce with a same-buffer read breaks the
        // exemption: partial sums become observable.
        let mixed = Effects::of_stmts(&[
            reduce("y", vec![var("i")], read("x", vec![var("j")])),
            assign("z", vec![var("j")], read("y", vec![var("i")])),
        ]);
        assert!(!loop_is_parallelizable(&Sym::new("j"), &mixed, &ctx));
    }

    #[test]
    fn disjoint_strided_writes_are_parallelizable() {
        // a[2*i] = ..; a[2*i+1] = ..  : distinct iterations write distinct
        // residue classes — the index-level test proves the loop parallel
        // where the old name-level test rejected it.
        let ctx = Context::new();
        let body = Effects::of_stmts(&[
            assign("a", vec![ib(2) * var("i")], fb(0.0)),
            assign("a", vec![ib(2) * var("i") + ib(1)], fb(1.0)),
        ]);
        assert!(loop_is_parallelizable(&Sym::new("i"), &body, &ctx));
        // a[2*i] and a[2*i + 2] collide across iterations (i' = i + 1).
        let body = Effects::of_stmts(&[
            assign("a", vec![ib(2) * var("i")], fb(0.0)),
            assign("a", vec![ib(2) * var("i") + ib(2)], fb(1.0)),
        ]);
        assert!(!loop_is_parallelizable(&Sym::new("i"), &body, &ctx));
        // Residuals varying with an inner iterator are not invariant:
        // y[i + j] over i may collide.
        let body = Effects::of_stmts(&[Stmt::For {
            iter: Sym::new("j"),
            lo: ib(0),
            hi: ib(4),
            body: exo_ir::Block::from_stmts(vec![assign("y", vec![var("i") + var("j")], fb(0.0))]),
            parallel: false,
        }]);
        assert!(!loop_is_parallelizable(&Sym::new("i"), &body, &ctx));
    }

    #[test]
    fn strided_offsets_commute_via_residue_classes() {
        // x[2*i] vs x[2*i + 1]: disjoint for all i, i' by residue class.
        let ctx = Context::new();
        let a = Effects::of_stmt(&assign("x", vec![ib(2) * var("i")], fb(1.0)));
        let b = Effects::of_stmt(&assign("x", vec![ib(2) * var("i") + ib(1)], fb(2.0)));
        assert!(stmts_commute(&a, &b, &ctx));
        // x[i] vs x[i + 8] with i < 8 on both: ranges [0,7] and [8,15].
        let mut rctx = Context::new();
        rctx.push_iter(Sym::new("i"), ib(0), ib(8));
        let a = Effects::of_stmt(&assign("x", vec![var("i")], fb(1.0)));
        let b = Effects::of_stmt(&assign("x", vec![var("i") + ib(8)], fb(2.0)));
        assert!(stmts_commute(&a, &b, &rctx));
        // x[i] vs x[j]: nothing relates the symbols — stay conservative.
        let a = Effects::of_stmt(&assign("x", vec![var("i")], fb(1.0)));
        let b = Effects::of_stmt(&assign("x", vec![var("j")], fb(2.0)));
        assert!(!stmts_commute(&a, &b, &ctx));
    }

    #[test]
    fn private_allocations_do_not_block_parallelism() {
        let ctx = Context::new();
        let stmts = vec![
            Stmt::Alloc {
                name: Sym::new("t"),
                ty: exo_ir::DataType::F32,
                dims: vec![],
                mem: exo_ir::Mem::Dram,
            },
            assign("t", vec![], read("x", vec![var("i")])),
            assign("y", vec![var("i")], var("t")),
        ];
        let eff = Effects::of_stmts(&stmts);
        assert!(loop_is_parallelizable(&Sym::new("i"), &eff, &ctx));
    }

    #[test]
    fn idempotence() {
        // x[i] = a  : idempotent
        assert!(is_idempotent(&[assign("x", vec![var("i")], var("a"))]));
        // x[i] += a : not idempotent
        assert!(!is_idempotent(&[reduce("x", vec![var("i")], var("a"))]));
        // x[i] = x[i] * 2 : not idempotent (reads what it writes)
        assert!(!is_idempotent(&[assign(
            "x",
            vec![var("i")],
            read("x", vec![var("i")]) * fb(2.0)
        )]));
        // blur_x[y, x] = inp[...] : idempotent
        assert!(is_idempotent(&[assign(
            "blur_x",
            vec![var("y"), var("x")],
            read("inp", vec![var("y"), var("x")])
        )]));
    }

    #[test]
    fn dependence_on_symbols() {
        let s = assign("y", vec![var("i")], read("x", vec![var("j")]));
        assert!(body_depends_on(std::slice::from_ref(&s), &Sym::new("j")));
        assert!(body_depends_on(std::slice::from_ref(&s), &Sym::new("i")));
        assert!(!body_depends_on(&[s], &Sym::new("k")));
        // Shadowing: a loop over `i` hides outer `i`.
        let shadowed = Stmt::For {
            iter: Sym::new("i"),
            lo: ib(0),
            hi: ib(4),
            body: Block::from_stmts(vec![assign("y", vec![var("i")], fb(0.0))]),
            parallel: false,
        };
        assert!(!body_depends_on(&[shadowed], &Sym::new("i")));
    }

    #[test]
    fn writes_depend_on_iter_check() {
        let eff = Effects::of_stmts(&[assign("y", vec![var("i")], fb(0.0))]);
        assert!(writes_depend_on_iter(&eff, &Sym::new("i")));
        let eff = Effects::of_stmts(&[assign("y", vec![var("j")], fb(0.0))]);
        assert!(!writes_depend_on_iter(&eff, &Sym::new("i")));
    }

    fn window(buf: &str, idx: Vec<exo_ir::WAccess>) -> Expr {
        Expr::Window {
            buf: Sym::new(buf),
            idx,
        }
    }

    #[test]
    fn threadable_elementwise_loop() {
        // y[i] = x[i] : disjoint per iteration of i, a race over j.
        let body = [assign("y", vec![var("i")], read("x", vec![var("i")]))];
        assert!(loop_is_threadable(&Sym::new("i"), &body));
        assert!(!loop_is_threadable(&Sym::new("j"), &body));
    }

    #[test]
    fn threadable_rejects_commuting_reduction() {
        // acc += x[i] commutes (parallelizable in the interpreter's
        // any-order sense) but is a read-modify-write race on threads.
        let body = [reduce("acc", vec![], read("x", vec![var("i")]))];
        let eff = Effects::of_stmts(&body);
        assert!(loop_is_parallelizable(
            &Sym::new("i"),
            &eff,
            &Context::new()
        ));
        assert!(!loop_is_threadable(&Sym::new("i"), &body));
    }

    #[test]
    fn threadable_certifies_instruction_call_windows() {
        use exo_ir::WAccess;
        // The vectorized-kernel shape: instruction calls on row windows
        // C[i, 16vo : 16vo+16]. `loop_is_parallelizable` rejects any
        // body with calls; the region analysis certifies it over `i`.
        let body = [Stmt::For {
            iter: Sym::new("vo"),
            lo: ib(0),
            hi: ib(4),
            body: Block::from_stmts(vec![Stmt::Call {
                proc: "mm512_loadu_ps".into(),
                args: vec![
                    window(
                        "C",
                        vec![
                            WAccess::Point(var("i")),
                            WAccess::Interval(ib(16) * var("vo"), ib(16) * var("vo") + ib(16)),
                        ],
                    ),
                    window(
                        "A",
                        vec![
                            WAccess::Point(var("i")),
                            WAccess::Interval(ib(16) * var("vo"), ib(16) * var("vo") + ib(16)),
                        ],
                    ),
                ],
            }]),
            parallel: false,
        }];
        let eff = Effects::of_stmts(&body);
        assert!(!loop_is_parallelizable(
            &Sym::new("i"),
            &eff,
            &Context::new()
        ));
        assert!(loop_is_threadable(&Sym::new("i"), &body));
        // Over `vo` the windows themselves are the strided dimension:
        // [16vo, 16vo+16) tiles are disjoint across vo.
        let Stmt::For { body: inner, .. } = &body[0] else {
            unreachable!()
        };
        assert!(loop_is_threadable(&Sym::new("vo"), inner));
    }

    #[test]
    fn threadable_overlapping_windows_rejected() {
        use exo_ir::WAccess;
        // Windows [8i, 8i+16) overlap between adjacent iterations.
        let body = [Stmt::Call {
            proc: "instr".into(),
            args: vec![window(
                "y",
                vec![WAccess::Interval(
                    ib(8) * var("i"),
                    ib(8) * var("i") + ib(16),
                )],
            )],
        }];
        assert!(!loop_is_threadable(&Sym::new("i"), &body));
        // The exactly-tiling width is certified.
        let body = [Stmt::Call {
            proc: "instr".into(),
            args: vec![window(
                "y",
                vec![WAccess::Interval(
                    ib(8) * var("i"),
                    ib(8) * var("i") + ib(8),
                )],
            )],
        }];
        assert!(loop_is_threadable(&Sym::new("i"), &body));
    }

    #[test]
    fn threadable_inner_iterator_offsets_rejected() {
        // y[x + dx] over x: adjacent iterations collide through dx.
        let body = [Stmt::For {
            iter: Sym::new("dx"),
            lo: ib(0),
            hi: ib(3),
            body: Block::from_stmts(vec![assign("y", vec![var("x") + var("dx")], fb(0.0))]),
            parallel: false,
        }];
        assert!(!loop_is_threadable(&Sym::new("x"), &body));
    }

    #[test]
    fn threadable_private_allocs_and_bare_buffers() {
        use exo_ir::{DataType, Mem, WAccess};
        // A body-local staging buffer is thread-private: writes into it
        // need no cross-iteration proof.
        let alloc = Stmt::Alloc {
            name: Sym::new("vtmp"),
            ty: DataType::F32,
            dims: vec![ib(16)],
            mem: Mem::Dram,
        };
        let stage = Stmt::Call {
            proc: "mm512_set1_ps".into(),
            args: vec![window("vtmp", vec![WAccess::Interval(ib(0), ib(16))])],
        };
        assert!(loop_is_threadable(
            &Sym::new("i"),
            &[alloc.clone(), stage.clone()]
        ));
        // The same call without the local alloc writes a shared buffer
        // with no i-strided dimension: rejected.
        assert!(!loop_is_threadable(&Sym::new("i"), &[stage]));
        // A bare non-private buffer argument is unanalyzable.
        let opaque = Stmt::Call {
            proc: "helper".into(),
            args: vec![var("shared")],
        };
        assert!(!loop_is_threadable(&Sym::new("i"), &[opaque]));
        assert!(loop_is_threadable(
            &Sym::new("i"),
            &[
                alloc,
                Stmt::Call {
                    proc: "helper".into(),
                    args: vec![var("vtmp")],
                }
            ]
        ));
    }

    #[test]
    fn threadable_aliases_and_config_bail() {
        let alias = Stmt::WindowStmt {
            name: Sym::new("w"),
            rhs: window("x", vec![exo_ir::WAccess::Interval(ib(0), ib(8))]),
        };
        assert!(!loop_is_threadable(&Sym::new("i"), &[alias]));
        let wcfg = Stmt::WriteConfig {
            config: Sym::new("cfg"),
            field: "stride".into(),
            value: ib(1),
        };
        assert!(!loop_is_threadable(&Sym::new("i"), &[wcfg]));
    }

    #[test]
    fn threadable_parallel_loops_collects_names() {
        use exo_ir::{DataType, Mem, ProcBuilder};
        // Two parallel loops: `i` (disjoint rows — certified) and `j`
        // (shared accumulator — rejected).
        let p = ProcBuilder::new("p")
            .size_arg("n")
            .tensor_arg("y", DataType::F32, vec![var("n")], Mem::Dram)
            .tensor_arg("acc", DataType::F32, vec![], Mem::Dram)
            .tensor_arg("x", DataType::F32, vec![var("n")], Mem::Dram)
            .stmt(Stmt::For {
                iter: Sym::new("i"),
                lo: ib(0),
                hi: var("n"),
                body: Block::from_stmts(vec![assign(
                    "y",
                    vec![var("i")],
                    read("x", vec![var("i")]),
                )]),
                parallel: true,
            })
            .stmt(Stmt::For {
                iter: Sym::new("j"),
                lo: ib(0),
                hi: var("n"),
                body: Block::from_stmts(vec![reduce("acc", vec![], read("x", vec![var("j")]))]),
                parallel: true,
            })
            .build();
        let names = threadable_parallel_loops(&p);
        assert!(names.contains("i"), "{names:?}");
        assert!(!names.contains("j"), "{names:?}");
    }
}
