//! Whole-proc static verification: bounds and race diagnostics.
//!
//! [`check_proc`] analyzes a complete procedure (not just the two
//! statements a scheduling primitive touches) and returns structured
//! [`Diagnostic`]s with stable codes and cursor-addressable paths:
//!
//! * **Bounds** — every buffer access (point reads/writes, window
//!   intervals) is proved in-bounds against the buffer's declared
//!   dimensions, using the assert-derived facts in [`Context`]
//!   (divisibility, lower bounds) and enclosing loop ranges.
//! * **Races** — every loop marked `parallel` is re-checked with the
//!   index-level dependence test of
//!   [`loop_is_parallelizable`](crate::loop_is_parallelizable).
//!
//! The bounds prover works over [`VLin`], a linear normal form that —
//! unlike [`LinExpr`], which treats `E / k` and `E % k` as opaque strings —
//! keeps floor-division and modulo atoms *structured*, so it can apply the
//! two rewrites the scheduled-code shapes demand:
//!
//! 1. **Recombination**: `k·(E/k) + (E%k) → E` (exact, no side
//!    conditions). This discharges the cut-tail shapes
//!    `buf[k*(hi/k) + tail_iter]` with `tail_iter < hi % k` that
//!    `divide_loop`'s `Cut` strategy produces.
//! 2. **Divisibility elimination**: `c·(E/k) → (c/k)·E` when `k | c` and
//!    the context proves `E % k == 0`. This discharges the perfect-tiling
//!    shapes `k*(N/k) ≤ N` under `assert N % k == 0`.
//!
//! Loop iterators are eliminated innermost-first by substituting the range
//! endpoint that extremizes the (monotone) index expression; substituting
//! innermost-first is what makes triangular nests (`for j in seq(0, i+1)`)
//! resolve, because an inner bound may mention outer iterators.
//!
//! The verdict is three-valued: an access is *proved in-bounds* (no
//! diagnostic), *provably out-of-bounds* ([`Severity::Error`], code V101),
//! or *not provable either way* ([`Severity::Warning`], code V102). The
//! autotuner only rejects candidates on errors; the `verify_bench --smoke`
//! CI gate requires zero diagnostics of either severity on every shipped
//! kernel and schedule of record.

use crate::checks::loop_is_parallelizable;
use crate::context::Context;
use crate::effects::Effects;
use crate::simplify::simplify_expr;
use exo_ir::{ib, substitute_expr, ArgKind, BinOp, Expr, Proc, Step, Stmt, Sym, WAccess};
use std::collections::{BTreeMap, BTreeSet};

/// How severe a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// The property could not be proved; the access may still be safe.
    Warning,
    /// The property is provably violated (or structurally ill-formed).
    Error,
}

/// One finding of [`check_proc`].
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable code: `V101` provably out-of-bounds, `V102` unprovable
    /// bounds, `V103` rank mismatch, `V104` unknown buffer, `V201`
    /// parallel-loop race.
    pub code: &'static str,
    /// Whether the finding is a proven violation or a failed proof.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Path of the statement containing the access (cursor-addressable).
    pub path: Vec<Step>,
    /// The buffer involved, when the diagnostic concerns an access.
    pub buf: Option<Sym>,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{sev}[{}]: {}", self.code, self.message)
    }
}

// ---------------------------------------------------------------------------
// VLin: linear normal form with structured div/mod atoms.
// ---------------------------------------------------------------------------

/// An atom of a [`VLin`]: unlike [`crate::LinExpr`]'s opaque strings, the
/// division and modulo atoms keep their numerator as a canonicalized
/// expression so rewrites can see through them.
#[derive(Clone, Debug)]
enum VAtom {
    Var(Sym),
    /// `expr / k` with `k > 0` (floor division).
    Div(Expr, i64),
    /// `expr % k` with `k > 0` (always in `[0, k)`).
    Mod(Expr, i64),
    /// Anything else (non-affine product, buffer read, ...).
    Other(Expr),
}

impl VAtom {
    fn to_expr(&self) -> Expr {
        match self {
            VAtom::Var(s) => Expr::Var(s.clone()),
            VAtom::Div(e, k) => e.clone() / ib(*k),
            VAtom::Mod(e, k) => e.clone() % ib(*k),
            VAtom::Other(e) => e.clone(),
        }
    }

    /// Canonical key used to merge structurally identical atoms.
    fn key(&self) -> String {
        self.to_expr().to_string()
    }

    fn mentions(&self, sym: &Sym) -> bool {
        match self {
            VAtom::Var(s) => s == sym,
            VAtom::Div(e, _) | VAtom::Mod(e, _) | VAtom::Other(e) => e.mentions(sym),
        }
    }
}

/// `constant + Σ coeff·atom` with structured atoms, keyed canonically.
#[derive(Clone, Debug, Default)]
struct VLin {
    terms: BTreeMap<String, (VAtom, i64)>,
    constant: i64,
}

impl VLin {
    fn constant(c: i64) -> VLin {
        VLin {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    fn add_term(&mut self, atom: VAtom, coeff: i64) {
        if coeff == 0 {
            return;
        }
        let key = atom.key();
        let entry = self.terms.entry(key.clone()).or_insert((atom, 0));
        entry.1 += coeff;
        if entry.1 == 0 {
            self.terms.remove(&key);
        }
    }

    fn add(&mut self, other: &VLin, scale: i64) {
        self.constant += other.constant * scale;
        for (atom, coeff) in other.terms.values() {
            self.add_term(atom.clone(), coeff * scale);
        }
    }

    fn as_constant(&self) -> Option<i64> {
        self.terms.is_empty().then_some(self.constant)
    }

    fn mentions(&self, sym: &Sym) -> bool {
        self.terms.values().any(|(a, _)| a.mentions(sym))
    }

    fn coeff_of_var(&self, sym: &Sym) -> i64 {
        self.terms
            .values()
            .find_map(|(a, c)| match a {
                VAtom::Var(s) if s == sym => Some(*c),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Rebuilds an [`Expr`] equal to this normal form.
    fn to_expr(&self) -> Expr {
        let mut out: Option<Expr> = None;
        for (atom, coeff) in self.terms.values() {
            let base = atom.to_expr();
            let term = if *coeff == 1 { base } else { ib(*coeff) * base };
            out = Some(match out {
                None => term,
                Some(prev) => prev + term,
            });
        }
        match (out, self.constant) {
            (None, c) => ib(c),
            (Some(e), 0) => e,
            (Some(e), c) if c > 0 => e + ib(c),
            (Some(e), c) => e - ib(-c),
        }
    }
}

/// Builds the [`VLin`] normal form of `e`, canonicalizing div/mod
/// numerators recursively and applying the recombination and divisibility
/// rewrites until fixpoint.
fn vnorm(e: &Expr, ctx: &Context) -> VLin {
    let mut v = vnorm_raw(e, ctx);
    reduce(&mut v, ctx);
    v
}

fn vnorm_raw(e: &Expr, ctx: &Context) -> VLin {
    match e {
        Expr::Int(v) => VLin::constant(*v),
        Expr::Bool(b) => VLin::constant(i64::from(*b)),
        Expr::Var(s) => {
            let mut v = VLin::default();
            v.add_term(VAtom::Var(s.clone()), 1);
            v
        }
        Expr::Bin { op, lhs, rhs } => match op {
            BinOp::Add | BinOp::Sub => {
                let mut v = vnorm_raw(lhs, ctx);
                let r = vnorm_raw(rhs, ctx);
                v.add(&r, if *op == BinOp::Add { 1 } else { -1 });
                v
            }
            BinOp::Mul => {
                let l = vnorm_raw(lhs, ctx);
                let r = vnorm_raw(rhs, ctx);
                if let Some(c) = l.as_constant() {
                    let mut v = VLin::default();
                    v.add(&r, c);
                    v
                } else if let Some(c) = r.as_constant() {
                    let mut v = VLin::default();
                    v.add(&l, c);
                    v
                } else {
                    opaque(e)
                }
            }
            BinOp::Div => div_mod_atom(lhs, rhs, ctx, true, e),
            BinOp::Mod => div_mod_atom(lhs, rhs, ctx, false, e),
            _ => opaque(e),
        },
        Expr::Un {
            op: exo_ir::UnOp::Neg,
            arg,
        } => {
            let mut v = VLin::default();
            v.add(&vnorm_raw(arg, ctx), -1);
            v
        }
        other => opaque(other),
    }
}

fn opaque(e: &Expr) -> VLin {
    let mut v = VLin::default();
    v.add_term(VAtom::Other(e.clone()), 1);
    v
}

fn div_mod_atom(num: &Expr, den: &Expr, ctx: &Context, is_div: bool, whole: &Expr) -> VLin {
    let Some(k) = den.as_int().filter(|k| *k > 0) else {
        return opaque(whole);
    };
    // Canonicalize the numerator first, so `(4*(N/4 - 1) + 4) / 8`
    // becomes `N / 8` before the atom is formed.
    let num_v = vnorm(num, ctx);
    if let Some(c) = num_v.as_constant() {
        return VLin::constant(if is_div {
            c.div_euclid(k)
        } else {
            c.rem_euclid(k)
        });
    }
    let num_e = num_v.to_expr();
    // Exact division: every coefficient (and the constant) divisible.
    let all_div = num_v.constant % k == 0 && num_v.terms.values().all(|(_, c)| c % k == 0);
    if all_div {
        let mut v = VLin::default();
        if is_div {
            v.constant = num_v.constant / k;
            for (atom, coeff) in num_v.terms.values() {
                v.add_term(atom.clone(), coeff / k);
            }
        }
        return v;
    }
    if !is_div && ctx.divides(&num_e, k) {
        return VLin::constant(0);
    }
    let mut v = VLin::default();
    v.add_term(
        if is_div {
            VAtom::Div(num_e, k)
        } else {
            VAtom::Mod(num_e, k)
        },
        1,
    );
    v
}

/// Applies the recombination and divisibility rewrites until fixpoint.
fn reduce(v: &mut VLin, ctx: &Context) {
    for _ in 0..8 {
        let mut changed = false;
        // Recombination: a·(E/k) + b·(E%k) with a == k·b  →  b·E.
        let keys: Vec<String> = v.terms.keys().cloned().collect();
        'outer: for key in &keys {
            let Some((VAtom::Mod(e, k), b)) = v.terms.get(key).cloned() else {
                continue;
            };
            let div_key = VAtom::Div(e.clone(), k).key();
            let Some((VAtom::Div(de, dk), a)) = v.terms.get(&div_key).cloned() else {
                continue;
            };
            if dk == k && a == k * b {
                v.terms.remove(key);
                v.terms.remove(&div_key);
                let inner = vnorm_raw(&de, ctx);
                v.add(&inner, b);
                changed = true;
                break 'outer;
            }
        }
        // Divisibility elimination: c·(E/k) → (c/k)·E when k|c and E%k==0.
        if !changed {
            let keys: Vec<String> = v.terms.keys().cloned().collect();
            for key in &keys {
                let Some((VAtom::Div(e, k), c)) = v.terms.get(key).cloned() else {
                    continue;
                };
                if c % k == 0 && ctx.divides(&e, k) {
                    v.terms.remove(key);
                    let inner = vnorm_raw(&e, ctx);
                    v.add(&inner, c / k);
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// The inequality prover.
// ---------------------------------------------------------------------------

/// Conservative constant lower/upper bound of a [`VLin`] under `ctx`.
fn vlin_const_bound(v: &VLin, ctx: &Context, lower: bool) -> Option<i64> {
    let mut acc = v.constant;
    for (atom, coeff) in v.terms.values() {
        // A positive coefficient needs the atom's bound in the same
        // direction; a negative coefficient needs the opposite one.
        let want_lower = (*coeff > 0) == lower;
        let b = atom_bound(atom, ctx, want_lower)?;
        acc += coeff * b;
    }
    Some(acc)
}

fn atom_bound(atom: &VAtom, ctx: &Context, lower: bool) -> Option<i64> {
    match atom {
        VAtom::Var(s) => {
            if lower {
                ctx.lower_bound(s)
            } else {
                ctx.upper_bound(s)
            }
        }
        VAtom::Mod(_, k) => Some(if lower { 0 } else { k - 1 }),
        VAtom::Div(e, k) => {
            let inner = vnorm(e, ctx);
            let b = vlin_const_bound(&inner, ctx, lower)?;
            Some(b.div_euclid(*k))
        }
        VAtom::Other(_) => None,
    }
}

/// Whether `a <= b` is provable under `ctx`. This is the verifier's
/// workhorse: it subsumes [`Context::proves_le`] by seeing through
/// floor-division/modulo atoms (recombination, divisibility elimination,
/// interval bounds).
pub fn prove_le(a: &Expr, b: &Expr, ctx: &Context) -> bool {
    let mut diff = vnorm(b, ctx);
    let va = vnorm(a, ctx);
    diff.add(&va, -1);
    reduce(&mut diff, ctx);
    if let Some(c) = diff.as_constant() {
        return c >= 0;
    }
    matches!(vlin_const_bound(&diff, ctx, true), Some(lo) if lo >= 0)
}

/// Substitutes every enclosing loop iterator (innermost first) by the
/// range endpoint that extremizes `e`, returning the extremized expression
/// — or `None` when some occurrence is not provably monotone in the
/// iterator (e.g. under a bare `%` with no recombinable partner).
fn extremize(e: &Expr, ctx: &Context, maximize: bool) -> Option<Expr> {
    let mut cur = simplify_expr(e, ctx);
    let iters = ctx.iterators();
    for iter in iters.iter().rev() {
        let v = vnorm(&cur, ctx);
        if !v.mentions(iter) {
            continue;
        }
        // Rebuild from the reduced form: recombination may already have
        // eliminated a non-monotone `%` occurrence.
        cur = v.to_expr();
        let lin_c = v.coeff_of_var(iter);
        // `take_hi`: substitute `hi - 1` (true) or `lo` (false).
        let mut dir: Option<bool> = match lin_c.cmp(&0) {
            std::cmp::Ordering::Greater => Some(maximize),
            std::cmp::Ordering::Less => Some(!maximize),
            std::cmp::Ordering::Equal => None,
        };
        for (atom, coeff) in v.terms.values() {
            let in_atom = match atom {
                VAtom::Var(_) => false,
                other => other.mentions(iter),
            };
            if !in_atom {
                continue;
            }
            // Only `E / k` atoms with `E` linear and monotone in the
            // iterator are handled; `%` and opaque occurrences are not
            // provably monotone.
            let VAtom::Div(inner, _) = atom else {
                return None;
            };
            let iv = vnorm(inner, ctx);
            let inner_c = iv.coeff_of_var(iter);
            let only_linear = inner_c != 0
                && !iv.terms.values().any(|(a, _)| match a {
                    VAtom::Var(_) => false,
                    other => other.mentions(iter),
                });
            if !only_linear {
                return None;
            }
            let increasing = (inner_c > 0) == (*coeff > 0);
            let want_hi = increasing == maximize;
            match dir {
                None => dir = Some(want_hi),
                Some(d) if d == want_hi => {}
                Some(_) => return None,
            }
        }
        let take_hi = dir?;
        let range = ctx.iter_range(iter)?;
        let value = if take_hi {
            range.hi.clone() - ib(1)
        } else {
            range.lo.clone()
        };
        cur = simplify_expr(&substitute_expr(cur, iter, &value), ctx);
    }
    Some(cur)
}

// ---------------------------------------------------------------------------
// The whole-proc driver.
// ---------------------------------------------------------------------------

struct Checker<'p> {
    proc: &'p Proc,
    /// Lexical scope of buffer shapes: `(name, dims)`, innermost last.
    scope: Vec<(Sym, Vec<Expr>)>,
    diags: Vec<Diagnostic>,
    /// Callee-writability oracle for the V201 region certificate.
    callee_writes: crate::checks::CalleeWrites<'p>,
}

/// Statically verifies a whole procedure: every access in-bounds, every
/// `parallel` loop race-free. Returns all diagnostics found (empty means
/// fully certified). Calls are treated conservatively (every buffer
/// argument may be written); see [`check_proc_where`] when the callee
/// bodies are at hand.
pub fn check_proc(proc: &Proc) -> Vec<Diagnostic> {
    check_proc_where(proc, &|_, _| None)
}

/// [`check_proc`] with a [`crate::checks::CalleeWrites`] oracle, so the
/// V201 race-freedom certificate can treat provably read-only call
/// operands (e.g. the source panel of a vector FMA) as reads instead of
/// conservative writes.
pub fn check_proc_where(
    proc: &Proc,
    callee_writes: crate::checks::CalleeWrites<'_>,
) -> Vec<Diagnostic> {
    let mut scope = Vec::new();
    for arg in proc.args() {
        if let ArgKind::Tensor { dims, .. } = &arg.kind {
            scope.push((arg.name.clone(), dims.clone()));
        }
    }
    let mut checker = Checker {
        proc,
        scope,
        diags: Vec::new(),
        callee_writes,
    };
    let ctx = Context::from_proc(proc);
    let mut path = Vec::new();
    checker.walk_block(proc.body().stmts(), false, &mut path, &ctx);
    checker.diags
}

/// Buffers with at least one access the verifier could not certify
/// in-bounds. `CodegenOptions::debug()` uses this to elide the runtime
/// bounds checks of fully-proven buffers while keeping them for the rest.
pub fn unproven_buffers(proc: &Proc) -> BTreeSet<String> {
    check_proc(proc)
        .into_iter()
        .filter(|d| d.code == "V101" || d.code == "V102" || d.code == "V103" || d.code == "V104")
        .filter_map(|d| d.buf.map(|b| b.name().to_string()))
        .collect()
}

impl Checker<'_> {
    fn walk_block(
        &mut self,
        stmts: &[Stmt],
        else_branch: bool,
        path: &mut Vec<Step>,
        ctx: &Context,
    ) {
        let scope_mark = self.scope.len();
        for (i, stmt) in stmts.iter().enumerate() {
            let step = if else_branch {
                Step::Else(i)
            } else {
                Step::Body(i)
            };
            path.push(step);
            self.walk_stmt(stmt, path, ctx);
            path.pop();
        }
        self.scope.truncate(scope_mark);
    }

    fn walk_stmt(&mut self, stmt: &Stmt, path: &mut Vec<Step>, ctx: &Context) {
        match stmt {
            Stmt::Assign { buf, idx, rhs } | Stmt::Reduce { buf, idx, rhs } => {
                self.check_point_access(buf, idx, path, ctx);
                for e in idx {
                    self.walk_expr(e, path, ctx);
                }
                self.walk_expr(rhs, path, ctx);
            }
            Stmt::Alloc { name, dims, .. } => {
                self.scope.push((name.clone(), dims.clone()));
            }
            Stmt::WindowStmt { name, rhs } => {
                if let Expr::Window { buf, idx } = rhs {
                    self.check_window(buf, idx, path, ctx);
                    let view_dims: Vec<Expr> = idx
                        .iter()
                        .filter_map(|w| match w {
                            WAccess::Interval(lo, hi) => {
                                Some(simplify_expr(&(hi.clone() - lo.clone()), ctx))
                            }
                            WAccess::Point(_) => None,
                        })
                        .collect();
                    self.scope.push((name.clone(), view_dims));
                }
                self.walk_expr(rhs, path, ctx);
            }
            Stmt::For {
                iter,
                lo,
                hi,
                body,
                parallel,
            } => {
                self.walk_expr(lo, path, ctx);
                self.walk_expr(hi, path, ctx);
                let mut inner = ctx.clone();
                inner.push_iter(iter.clone(), lo.clone(), hi.clone());
                if *parallel {
                    let eff = Effects::of_stmts(body.iter());
                    // Two independent certificates: the index-level
                    // commutativity check (rejects any body with calls)
                    // and the region-level thread-safety check (handles
                    // instruction calls via their window footprints).
                    // Either one proves the iterations order-independent.
                    if !loop_is_parallelizable(iter, &eff, &inner)
                        && !crate::checks::loop_is_threadable_where(
                            iter,
                            body.iter(),
                            self.callee_writes,
                        )
                    {
                        self.diags.push(Diagnostic {
                            code: "V201",
                            severity: Severity::Error,
                            message: format!(
                                "parallel loop `{iter}` in `{}` is not provably race-free",
                                self.proc.name()
                            ),
                            path: path.clone(),
                            buf: None,
                        });
                    }
                }
                self.walk_block(body.stmts(), false, path, &inner);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                self.walk_expr(cond, path, ctx);
                self.walk_block(then_body.stmts(), false, path, ctx);
                self.walk_block(else_body.stmts(), true, path, ctx);
            }
            Stmt::Call { args, .. } => {
                for a in args {
                    self.walk_expr(a, path, ctx);
                }
            }
            Stmt::WriteConfig { value, .. } => self.walk_expr(value, path, ctx),
            Stmt::Pass => {}
        }
    }

    fn walk_expr(&mut self, e: &Expr, path: &mut Vec<Step>, ctx: &Context) {
        match e {
            Expr::Read { buf, idx } => {
                self.check_point_access(buf, idx, path, ctx);
                for i in idx {
                    self.walk_expr(i, path, ctx);
                }
            }
            Expr::Window { buf, idx } => {
                self.check_window(buf, idx, path, ctx);
                for w in idx {
                    match w {
                        WAccess::Point(p) => self.walk_expr(p, path, ctx),
                        WAccess::Interval(lo, hi) => {
                            self.walk_expr(lo, path, ctx);
                            self.walk_expr(hi, path, ctx);
                        }
                    }
                }
            }
            Expr::Bin { lhs, rhs, .. } => {
                self.walk_expr(lhs, path, ctx);
                self.walk_expr(rhs, path, ctx);
            }
            Expr::Un { arg, .. } => self.walk_expr(arg, path, ctx),
            _ => {}
        }
    }

    fn dims_of(&self, buf: &Sym) -> Option<Vec<Expr>> {
        self.scope
            .iter()
            .rev()
            .find(|(name, _)| name == buf)
            .map(|(_, dims)| dims.clone())
    }

    fn check_point_access(&mut self, buf: &Sym, idx: &[Expr], path: &[Step], ctx: &Context) {
        let Some(dims) = self.dims_of(buf) else {
            self.diag(
                "V104",
                Severity::Error,
                path,
                buf,
                format!("access to unknown buffer `{buf}`"),
            );
            return;
        };
        if idx.len() != dims.len() {
            self.diag(
                "V103",
                Severity::Error,
                path,
                buf,
                format!(
                    "`{buf}` has {} dimension(s) but is accessed with {} index(es)",
                    dims.len(),
                    idx.len()
                ),
            );
            return;
        }
        for (d, (e, dim)) in idx.iter().zip(dims.iter()).enumerate() {
            // Upper: max(e) <= dim - 1.
            self.check_le(
                e,
                &(dim.clone() - ib(1)),
                path,
                ctx,
                buf,
                &format!("index `{e}` of `{buf}` (dim {d}, extent {dim})"),
            );
            // Lower: 0 <= min(e).
            self.check_ge_zero(
                e,
                path,
                ctx,
                buf,
                &format!("index `{e}` of `{buf}` (dim {d})"),
            );
        }
    }

    fn check_window(&mut self, buf: &Sym, idx: &[WAccess], path: &[Step], ctx: &Context) {
        let Some(dims) = self.dims_of(buf) else {
            self.diag(
                "V104",
                Severity::Error,
                path,
                buf,
                format!("window of unknown buffer `{buf}`"),
            );
            return;
        };
        if idx.len() != dims.len() {
            self.diag(
                "V103",
                Severity::Error,
                path,
                buf,
                format!(
                    "`{buf}` has {} dimension(s) but is windowed with {} accessor(s)",
                    dims.len(),
                    idx.len()
                ),
            );
            return;
        }
        for (d, (w, dim)) in idx.iter().zip(dims.iter()).enumerate() {
            match w {
                WAccess::Point(e) => {
                    self.check_le(
                        e,
                        &(dim.clone() - ib(1)),
                        path,
                        ctx,
                        buf,
                        &format!("window point `{e}` of `{buf}` (dim {d}, extent {dim})"),
                    );
                    self.check_ge_zero(
                        e,
                        path,
                        ctx,
                        buf,
                        &format!("window point `{e}` of `{buf}` (dim {d})"),
                    );
                }
                WAccess::Interval(lo, hi) => {
                    // The interval is `[lo, hi)`: `hi` may equal the extent.
                    self.check_le(
                        hi,
                        dim,
                        path,
                        ctx,
                        buf,
                        &format!("window end `{hi}` of `{buf}` (dim {d}, extent {dim})"),
                    );
                    self.check_ge_zero(
                        lo,
                        path,
                        ctx,
                        buf,
                        &format!("window start `{lo}` of `{buf}` (dim {d})"),
                    );
                }
            }
        }
    }

    /// Proves `max(e) <= bound`; on failure distinguishes a proven
    /// violation (`min(e) > bound`) from an unprovable obligation.
    fn check_le(
        &mut self,
        e: &Expr,
        bound: &Expr,
        path: &[Step],
        ctx: &Context,
        buf: &Sym,
        what: &str,
    ) {
        if let Some(mx) = extremize(e, ctx, true) {
            if prove_le(&mx, bound, ctx) {
                return;
            }
        }
        let proven_oob = extremize(e, ctx, false)
            .map(|mn| prove_le(&(bound.clone() + ib(1)), &mn, ctx))
            .unwrap_or(false);
        if proven_oob {
            self.diag(
                "V101",
                Severity::Error,
                path,
                buf,
                format!("{what} is provably out of bounds (exceeds `{bound}`)"),
            );
        } else {
            self.diag(
                "V102",
                Severity::Warning,
                path,
                buf,
                format!("cannot prove {what} stays within `{bound}`"),
            );
        }
    }

    /// Proves `min(e) >= 0`; on failure distinguishes provably negative
    /// from unprovable.
    fn check_ge_zero(&mut self, e: &Expr, path: &[Step], ctx: &Context, buf: &Sym, what: &str) {
        if let Some(mn) = extremize(e, ctx, false) {
            if prove_le(&ib(0), &mn, ctx) {
                return;
            }
        }
        let proven_neg = extremize(e, ctx, true)
            .map(|mx| prove_le(&(mx + ib(1)), &ib(0), ctx))
            .unwrap_or(false);
        if proven_neg {
            self.diag(
                "V101",
                Severity::Error,
                path,
                buf,
                format!("{what} is provably negative"),
            );
        } else {
            self.diag(
                "V102",
                Severity::Warning,
                path,
                buf,
                format!("cannot prove {what} is non-negative"),
            );
        }
    }

    fn diag(
        &mut self,
        code: &'static str,
        severity: Severity,
        path: &[Step],
        buf: &Sym,
        message: String,
    ) {
        self.diags.push(Diagnostic {
            code,
            severity,
            message,
            path: path.to_vec(),
            buf: Some(buf.clone()),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exo_ir::{var, DataType, Mem, ProcBuilder};

    fn ctx_with(f: impl FnOnce(&mut Context)) -> Context {
        let mut ctx = Context::new();
        f(&mut ctx);
        ctx
    }

    #[test]
    fn prove_le_sees_through_perfect_tiling() {
        // 8 * (n / 8) <= n  under  n % 8 == 0.
        let ctx = ctx_with(|c| {
            c.add_fact(&Expr::eq_(Expr::modulo(var("n"), ib(8)), ib(0)));
        });
        let e = ib(8) * (var("n") / ib(8));
        assert!(prove_le(&e, &var("n"), &ctx));
        assert!(prove_le(&var("n"), &e, &ctx));
        // Without the fact the floor bound still gives `8*(n/8) <= n`...
        let bare = Context::new();
        // ...but not through the equality path; the conservative answer is
        // allowed to be `false` here.
        let _ = prove_le(&e, &var("n"), &bare);
        // The reverse is definitely not provable without divisibility.
        assert!(!prove_le(&var("n"), &e, &bare));
    }

    #[test]
    fn divmod_recombination() {
        // 4*(E/4) + E%4 - 1 == E - 1 for E = ri + 4*ro + 1.
        let ctx = Context::new();
        let e = var("ri") + ib(4) * var("ro") + ib(1);
        let recombined = ib(4) * (e.clone() / ib(4)) + e.clone() % ib(4) - ib(1);
        assert!(prove_le(&recombined, &(e.clone() - ib(1)), &ctx));
        assert!(prove_le(&(e - ib(1)), &recombined, &ctx));
    }

    #[test]
    fn extremize_is_innermost_first() {
        // for i in 0..N: for j in 0..i+1: max(j) should reach N-1.
        let mut ctx = Context::new();
        ctx.push_iter(Sym::new("i"), ib(0), var("N"));
        ctx.push_iter(Sym::new("j"), ib(0), var("i") + ib(1));
        let mx = extremize(&var("j"), &ctx, true).unwrap();
        assert!(prove_le(&mx, &(var("N") - ib(1)), &ctx), "{mx}");
    }

    fn vec_kernel() -> Proc {
        // The saxpy+l1 shape: windows x[8*vo : 8*vo + 8] under n % 8 == 0.
        ProcBuilder::new("vk")
            .size_arg("n")
            .tensor_arg("x", DataType::F32, vec![var("n")], Mem::Dram)
            .assert_(Expr::eq_(Expr::modulo(var("n"), ib(8)), ib(0)))
            .assert_(Expr::Bin {
                op: BinOp::Ge,
                lhs: Box::new(var("n")),
                rhs: Box::new(ib(8)),
            })
            .for_("vo", ib(0), var("n") / ib(8), |b| {
                b.assign(
                    "x",
                    vec![ib(8) * var("vo") + ib(7)],
                    exo_ir::read("x", vec![ib(8) * var("vo")]),
                );
            })
            .build()
    }

    #[test]
    fn vectorized_accesses_certify() {
        let diags = check_proc(&vec_kernel());
        assert!(diags.is_empty(), "{:?}", diags);
    }

    #[test]
    fn oob_access_is_an_error() {
        let p = ProcBuilder::new("bad")
            .size_arg("n")
            .tensor_arg("x", DataType::F32, vec![var("n")], Mem::Dram)
            .for_("i", ib(0), var("n"), |b| {
                b.assign("x", vec![var("i") + var("n")], ib(0));
            })
            .build();
        let diags = check_proc(&p);
        assert!(diags.iter().any(|d| d.code == "V101"), "{:?}", diags);
        assert!(unproven_buffers(&p).contains("x"));
    }

    #[test]
    fn unprovable_access_is_a_warning() {
        // x[i + j] with i, j < n: may or may not exceed n-1.
        let p = ProcBuilder::new("warn")
            .size_arg("n")
            .tensor_arg("x", DataType::F32, vec![var("n")], Mem::Dram)
            .for_("i", ib(0), var("n"), |b| {
                b.for_("j", ib(0), var("n"), |b| {
                    b.assign("x", vec![var("i") + var("j")], ib(0));
                });
            })
            .build();
        let diags = check_proc(&p);
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.severity == Severity::Warning));
    }
}
