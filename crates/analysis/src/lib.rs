//! # exo-analysis — the safety-analysis substrate
//!
//! Exo 2's scheduling primitives are *safe*: each one checks that the
//! transformation preserves functional equivalence and raises a
//! `SchedulingError` otherwise. The original implementation discharges
//! these checks with an SMT solver; this reproduction uses a purpose-built,
//! conservative symbolic engine instead (see `DESIGN.md` §1 for the
//! substitution rationale):
//!
//! * [`LinExpr`] — affine normal forms over symbols, with non-affine
//!   sub-expressions treated as opaque atoms,
//! * [`Context`] — facts harvested from procedure assertions (divisibility,
//!   bounds) and enclosing loop ranges,
//! * [`Effects`] — read/write/reduce access sets of statements and blocks,
//! * commutativity / dependence / idempotence / invariance checks used by
//!   the primitives in `exo-core`,
//! * [`infer_bounds`] — the per-buffer bounds inference that the paper's
//!   Halide library builds in user space (§4),
//! * [`simplify_expr`] — arithmetic simplification used by the `simplify`
//!   primitive.
//!
//! The engine is conservative: it may fail to prove a safe transformation
//! (raising a scheduling error), but within the modelled affine fragment it
//! never accepts an unsafe one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod checks;
mod context;
mod effects;
mod linear;
mod simplify;
mod verify;

pub use bounds::{infer_bounds, BoundsFailure, BufferBounds};
pub use checks::{
    alloc_names, body_depends_on, buffers_written, is_idempotent, loop_is_parallelizable,
    loop_is_threadable, loop_is_threadable_where, stmts_commute, threadable_parallel_loops,
    threadable_parallel_loops_where, writes_depend_on_iter, written_params, CalleeWrites,
};
pub use context::Context;
pub use effects::{Access, Effects};
pub use linear::{provably_equal, LinExpr};
pub use simplify::{simplify_expr, simplify_predicate, simplify_with_binding};
pub use verify::{check_proc, check_proc_where, prove_le, unproven_buffers, Diagnostic, Severity};
