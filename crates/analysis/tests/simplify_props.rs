//! Property tests for `simplify_expr` / `simplify_with_binding` /
//! `simplify_predicate`: a simplified expression must evaluate to exactly
//! the same value as the original on random assignments (that respect the
//! facts in the context).

use exo_analysis::{simplify_expr, simplify_predicate, simplify_with_binding, Context};
use exo_ir::{ib, var, BinOp, Expr, Sym, UnOp};
use proptest::prelude::*;

const VARS: [&str; 3] = ["io", "ii", "j"];

/// Deterministic xorshift64* stream used to derive random trees and
/// assignments from a single proptest-supplied seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Random integer expression over `VARS`: +, -, *, negation, and
/// division/modulo by a positive constant (the shapes the simplifier
/// targets). Small constants keep evaluation far from i64 overflow.
fn random_expr(rng: &mut Rng, depth: usize) -> Expr {
    if depth == 0 || rng.below(4) == 0 {
        return match rng.below(2) {
            0 => ib(rng.below(9) as i64 - 4),
            _ => var(VARS[rng.below(VARS.len() as u64) as usize]),
        };
    }
    match rng.below(6) {
        0 => random_expr(rng, depth - 1) + random_expr(rng, depth - 1),
        1 => random_expr(rng, depth - 1) - random_expr(rng, depth - 1),
        2 => random_expr(rng, depth - 1) * ib(rng.below(5) as i64 - 2),
        3 => random_expr(rng, depth - 1) / ib(rng.below(7) as i64 + 2),
        4 => random_expr(rng, depth - 1) % ib(rng.below(7) as i64 + 2),
        _ => Expr::Un {
            op: UnOp::Neg,
            arg: Box::new(random_expr(rng, depth - 1)),
        },
    }
}

/// Evaluate an integer expression under an assignment, with the same
/// euclidean division/modulo semantics the simplifier folds with.
fn eval(e: &Expr, env: &dyn Fn(&Sym) -> i64) -> i64 {
    match e {
        Expr::Int(v) => *v,
        Expr::Var(s) => env(s),
        Expr::Bin { op, lhs, rhs } => {
            let (a, b) = (eval(lhs, env), eval(rhs, env));
            match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a.div_euclid(b),
                BinOp::Mod => a.rem_euclid(b),
                other => panic!("unexpected integer operator {other:?}"),
            }
        }
        Expr::Un { op: UnOp::Neg, arg } => -eval(arg, env),
        other => panic!("unexpected expression {other}"),
    }
}

fn eval_cmp(op: BinOp, a: i64, b: i64) -> bool {
    match op {
        BinOp::Lt => a < b,
        BinOp::Le => a <= b,
        BinOp::Gt => a > b,
        BinOp::Ge => a >= b,
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        other => panic!("unexpected comparison operator {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Without context facts, simplification is pure algebra: the
    /// simplified tree evaluates identically on arbitrary assignments.
    #[test]
    fn simplify_preserves_value_without_facts(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let e = random_expr(&mut rng, 3);
        let ctx = Context::new();
        let s = simplify_expr(&e, &ctx);
        for trial in 0..8u64 {
            let mut r = Rng::new(seed ^ (trial + 1).wrapping_mul(0x9e3779b97f4a7c15));
            let vals: Vec<i64> = VARS.iter().map(|_| r.below(17) as i64 - 8).collect();
            let env = |sym: &Sym| -> i64 {
                VARS.iter().position(|v| sym.name() == *v).map(|i| vals[i]).unwrap()
            };
            prop_assert!(
                eval(&e, &env) == eval(&s, &env),
                "{e}  !=  {s}  under {vals:?}"
            );
        }
    }

    /// With an iteration-range fact `ii in [0, 8)`, simplification may
    /// cancel `(8*io + ii) / 8`-style divisions — but only on assignments
    /// consistent with the fact, where it must still be value-preserving.
    #[test]
    fn simplify_preserves_value_under_range_facts(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let e = random_expr(&mut rng, 3);
        let mut ctx = Context::new();
        ctx.push_iter(Sym::new("ii"), ib(0), ib(8));
        let s = simplify_expr(&e, &ctx);
        for trial in 0..8u64 {
            let mut r = Rng::new(seed ^ (trial + 1).wrapping_mul(0x9e3779b97f4a7c15));
            let io = r.below(17) as i64 - 8;
            let ii = r.below(8) as i64; // consistent with the pushed range
            let j = r.below(17) as i64 - 8;
            let env = |sym: &Sym| -> i64 {
                match sym.name() {
                    "io" => io,
                    "ii" => ii,
                    "j" => j,
                    other => panic!("unexpected symbol {other}"),
                }
            };
            prop_assert!(
                eval(&e, &env) == eval(&s, &env),
                "{e}  !=  {s}  under io={io} ii={ii} j={j}"
            );
        }
    }

    /// `simplify_with_binding(e, sym, v)` equals evaluating with `sym = v`.
    #[test]
    fn binding_substitution_preserves_value(seed in any::<u64>(), bound in -8i64..9) {
        let mut rng = Rng::new(seed);
        let e = random_expr(&mut rng, 3);
        let ctx = Context::new();
        let s = simplify_with_binding(&e, &Sym::new("ii"), bound, &ctx);
        for trial in 0..8u64 {
            let mut r = Rng::new(seed ^ (trial + 1).wrapping_mul(0x9e3779b97f4a7c15));
            let io = r.below(17) as i64 - 8;
            let j = r.below(17) as i64 - 8;
            let env = |sym: &Sym| -> i64 {
                match sym.name() {
                    "io" => io,
                    "ii" => bound,
                    "j" => j,
                    other => panic!("unexpected symbol {other}"),
                }
            };
            prop_assert!(
                eval(&e, &env) == eval(&s, &env),
                "{e}  !=  {s}  with ii := {bound}, io={io} j={j}"
            );
        }
    }

    /// When `simplify_predicate` decides a comparison, every consistent
    /// assignment agrees with the verdict.
    #[test]
    fn decided_predicates_are_sound(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let lhs = random_expr(&mut rng, 2);
        let rhs = random_expr(&mut rng, 2);
        let op = [BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge, BinOp::Eq, BinOp::Ne]
            [rng.below(6) as usize];
        let pred = Expr::Bin {
            op,
            lhs: Box::new(lhs.clone()),
            rhs: Box::new(rhs.clone()),
        };
        let mut ctx = Context::new();
        ctx.push_iter(Sym::new("ii"), ib(0), ib(8));
        ctx.push_iter(Sym::new("io"), ib(0), ib(4));
        ctx.push_iter(Sym::new("j"), ib(0), ib(16));
        if let Some(verdict) = simplify_predicate(&pred, &ctx) {
            for trial in 0..8u64 {
                let mut r = Rng::new(seed ^ (trial + 1).wrapping_mul(0x9e3779b97f4a7c15));
                let io = r.below(4) as i64;
                let ii = r.below(8) as i64;
                let j = r.below(16) as i64;
                let env = |sym: &Sym| -> i64 {
                    match sym.name() {
                        "io" => io,
                        "ii" => ii,
                        "j" => j,
                        other => panic!("unexpected symbol {other}"),
                    }
                };
                let actual = eval_cmp(op, eval(&lhs, &env), eval(&rhs, &env));
                prop_assert!(
                    actual == verdict,
                    "{pred} decided {verdict} but evaluates {actual} under io={io} ii={ii} j={j}"
                );
            }
        }
    }
}
