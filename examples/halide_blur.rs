//! Reproduce the Halide-style blur schedule (paper §6.3.2): compute the
//! producer at the consumer's row tiles via bounds inference, vectorize,
//! and compare against the naive two-pass pipeline.
//!
//! Run with: `cargo run --example halide_blur`

use exo2::cursors::ProcHandle;
use exo2::interp::{ArgValue, ProcRegistry};
use exo2::ir::DataType;
use exo2::kernels::blur2d;
use exo2::lib::halide_blur_schedule;
use exo2::machine::{simulate, MachineModel};

fn main() {
    let machine = MachineModel::avx2();
    let p = ProcHandle::new(blur2d());
    let scheduled = halide_blur_schedule(&p, &machine).expect("blur schedule");
    println!("== blur scheduled with the Halide library ==\n{scheduled}");

    let registry: ProcRegistry = machine.instructions(DataType::F32).into_iter().collect();
    let (h, w) = (96usize, 96usize);
    let mk = || {
        let (_, i) = ArgValue::from_vec(
            vec![1.0; (h + 2) * (w + 2)],
            vec![h + 2, w + 2],
            DataType::F32,
        );
        let (_, o) = ArgValue::zeros(vec![h, w], DataType::F32);
        let (_, bx) = ArgValue::zeros(vec![h + 2, w], DataType::F32);
        vec![ArgValue::Int(h as i64), ArgValue::Int(w as i64), i, o, bx]
    };
    let naive = simulate(p.proc(), &registry, mk());
    let opt = simulate(scheduled.proc(), &registry, mk());
    println!(
        "naive pipeline: {} cycles\nscheduled:      {} cycles\nspeedup:        {:.2}x",
        naive.cycles,
        opt.cycles,
        naive.cycles as f64 / opt.cycles as f64
    );
}
