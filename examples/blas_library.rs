//! Build a BLAS kernel with the level-1 scheduling library and compare the
//! simulated cycles of the scalar and vectorized versions on AVX2 and
//! AVX512 — the workflow of the paper's §6.2.
//!
//! Run with: `cargo run --example blas_library`

use exo2::cursors::ProcHandle;
use exo2::interp::{ArgValue, ProcRegistry};
use exo2::ir::DataType;
use exo2::kernels::{axpy, dot, Precision};
use exo2::lib::level1::optimize_level_1;
use exo2::machine::{simulate, MachineModel};

fn bench(kernel: &exo2::ir::Proc, registry: &ProcRegistry, n: usize) -> u64 {
    let (_, x) = ArgValue::from_vec(vec![1.0; n], vec![n], DataType::F32);
    let (_, y) = ArgValue::from_vec(vec![2.0; n], vec![n], DataType::F32);
    let (_, out) = ArgValue::zeros(vec![1], DataType::F32);
    simulate(
        kernel,
        registry,
        vec![ArgValue::Int(n as i64), ArgValue::Float(3.0), x, y, out],
    )
    .cycles
}

fn main() {
    let n = 4096usize;
    for machine in [MachineModel::avx2(), MachineModel::avx512()] {
        let registry: ProcRegistry = machine.instructions(DataType::F32).into_iter().collect();
        println!("== {} ==", machine.name);
        for kernel in [axpy(Precision::Single), dot(Precision::Single)] {
            let p = ProcHandle::new(kernel);
            let loop_ = p.find_loop("i").unwrap();
            let opt = optimize_level_1(&p, &loop_, DataType::F32, &machine, 2).unwrap();
            let scalar = bench(p.proc(), &registry, n);
            let vector = bench(opt.proc(), &registry, n);
            println!(
                "{:<8} scalar {scalar:>9} cycles   scheduled {vector:>9} cycles   speedup {:.2}x",
                p.name(),
                scalar as f64 / vector as f64
            );
        }
    }
}
