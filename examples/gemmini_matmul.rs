//! Schedule the quantized matmul onto the Gemmini accelerator model
//! (paper §6.1.2 / Appendix B) and print the resulting object code and
//! simulated speedup over the host loop nest.
//!
//! Run with: `cargo run --example gemmini_matmul`

use exo2::cursors::ProcHandle;
use exo2::interp::{ArgValue, ProcRegistry};
use exo2::ir::DataType;
use exo2::kernels::gemmini_matmul;
use exo2::lib::gemmini_schedule;
use exo2::machine::{gemmini_instructions, simulate};

fn main() {
    let p = ProcHandle::new(gemmini_matmul());
    let scheduled = gemmini_schedule(&p).expect("gemmini schedule");
    println!("== scheduled for Gemmini ==\n{scheduled}");

    let registry: ProcRegistry = gemmini_instructions().into_iter().collect();
    let (m, n, k) = (64usize, 64usize, 64usize);
    let mk = || {
        let (_, a) = ArgValue::from_vec(vec![1.0; m * k], vec![m, k], DataType::I8);
        let (_, b) = ArgValue::from_vec(vec![2.0; k * n], vec![k, n], DataType::I8);
        let (_, c) = ArgValue::zeros(vec![m, n], DataType::I32);
        vec![
            ArgValue::Int(m as i64),
            ArgValue::Int(n as i64),
            ArgValue::Int(k as i64),
            a,
            b,
            c,
        ]
    };
    let host = simulate(p.proc(), &registry, mk());
    let accel = simulate(scheduled.proc(), &registry, mk());
    println!(
        "host loop nest: {} cycles\naccelerator:    {} cycles\nspeedup:        {:.1}x ({} accelerator instructions issued)",
        host.cycles,
        accel.cycles,
        host.cycles as f64 / accel.cycles as f64,
        accel.instr_count
    );
}
