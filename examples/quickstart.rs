//! Quickstart: define a kernel, point a cursor at a loop, schedule it with
//! the primitives, and run it — the gemv tiling walk-through of the
//! paper's §2/§3.
//!
//! Run with: `cargo run --example quickstart`

use exo2::core::{divide_loop, lift_scope, TailStrategy};
use exo2::cursors::ProcHandle;
use exo2::interp::{ArgValue, Interpreter, NullMonitor, ProcRegistry};
use exo2::ir::{ib, read, var, DataType, Expr, Mem, ProcBuilder};

fn main() {
    // The gemv object code from the paper's §2.
    let gemv = ProcBuilder::new("gemv")
        .size_arg("M")
        .size_arg("N")
        .tensor_arg("A", DataType::F32, vec![var("M"), var("N")], Mem::Dram)
        .tensor_arg("x", DataType::F32, vec![var("N")], Mem::Dram)
        .tensor_arg("y", DataType::F32, vec![var("M")], Mem::Dram)
        .assert_(Expr::eq_(Expr::modulo(var("M"), ib(8)), ib(0)))
        .assert_(Expr::eq_(Expr::modulo(var("N"), ib(8)), ib(0)))
        .for_("i", ib(0), var("M"), |b| {
            b.for_("j", ib(0), var("N"), |b| {
                let rhs = read("A", vec![var("i"), var("j")]) * read("x", vec![var("j")]);
                b.reduce("y", vec![var("i")], rhs);
            });
        })
        .build();

    let p = ProcHandle::new(gemv);
    println!("== unscheduled ==\n{p}");

    // Cursors: by name and by pattern resolve to the same loop (paper §2).
    let cur_0 = p.find_loop("i").unwrap();
    let cur_1 = p.find("for i in _: _").unwrap();
    assert_eq!(cur_0.path(), cur_1.path());

    // tile2D by composing primitives (paper §3.1).
    let p = divide_loop(&p, "i", 8, ["io", "ii"], TailStrategy::Perfect).unwrap();
    let p = divide_loop(&p, "j", 8, ["jo", "ji"], TailStrategy::Perfect).unwrap();
    let p = lift_scope(&p, "jo").unwrap();
    println!("== tiled ==\n{p}");

    // The rewritten procedure still computes the same thing.
    let registry = ProcRegistry::new();
    let mut interp = Interpreter::new(&registry);
    let (m, n) = (8usize, 8usize);
    let (_, a) = ArgValue::from_vec(
        (0..m * n).map(|v| v as f64).collect(),
        vec![m, n],
        DataType::F32,
    );
    let (_, x) = ArgValue::from_vec(vec![1.0; n], vec![n], DataType::F32);
    let (ybuf, y) = ArgValue::zeros(vec![m], DataType::F32);
    interp
        .run(
            p.proc(),
            vec![ArgValue::Int(m as i64), ArgValue::Int(n as i64), a, x, y],
            &mut NullMonitor,
        )
        .unwrap();
    println!("y = {:?}", ybuf.borrow().data);
}
